//! Leveled, structured stderr logging behind `XBOUND_LOG`.
//!
//! The workspace's progress and warning output used to be scattered
//! `eprintln!` calls with per-binary prefixes. This module funnels them
//! through one grep-able key=value line format:
//!
//! ```text
//! ts=12.042 level=warn component=serve msg="accept failed: ..."
//! ```
//!
//! The level comes from `XBOUND_LOG` (`error`, `warn`, `info`, `debug`;
//! default `info`), resolved once per process. `info` keeps the
//! historical behavior — progress notes like `wrote PATH` still print —
//! while `XBOUND_LOG=error` silences everything but hard failures and
//! `XBOUND_LOG=debug` opens the verbose taps. Use the [`crate::error!`],
//! [`crate::warn!`], [`crate::info!`], [`crate::debug!`] macros: the
//! format arguments are not evaluated when the level is filtered out.

use std::sync::OnceLock;
use std::time::Instant;

/// Log severity, ordered from most to least severe.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Level {
    /// Unrecoverable or dropped-work failures.
    Error,
    /// Degraded but continuing (cache write failed, spawn failed).
    Warn,
    /// Progress notes (`wrote PATH`, daemon startup). The default.
    Info,
    /// Verbose internals.
    Debug,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Parses an `XBOUND_LOG` value; unknown strings fall back to the
/// default ([`Level::Info`]).
pub fn parse_level(v: &str) -> Level {
    match v.trim().to_ascii_lowercase().as_str() {
        "error" | "e" | "0" => Level::Error,
        "warn" | "warning" | "w" | "1" => Level::Warn,
        "debug" | "d" | "3" => Level::Debug,
        _ => Level::Info,
    }
}

fn max_level() -> Level {
    static LEVEL: OnceLock<Level> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        std::env::var("XBOUND_LOG")
            .map(|v| parse_level(&v))
            .unwrap_or(Level::Info)
    })
}

/// True when `level` messages pass the process filter. The macros call
/// this before evaluating their format arguments.
#[inline]
pub fn enabled(level: Level) -> bool {
    level <= max_level()
}

fn start() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Emits one structured line to stderr. Prefer the level macros; this is
/// their single funnel (and the place a future sink redirect would go).
pub fn log(level: Level, component: &str, msg: std::fmt::Arguments<'_>) {
    if !enabled(level) {
        return;
    }
    let ts = start().elapsed().as_secs_f64();
    let msg = msg.to_string();
    // Quote-escape so the line stays one parseable key=value record even
    // when the message itself contains quotes.
    let escaped = msg.replace('\\', "\\\\").replace('"', "\\\"");
    eprintln!(
        "ts={ts:.3} level={} component={component} msg=\"{escaped}\"",
        level.as_str()
    );
}

/// Logs at [`Level::Error`]: `error!("serve", "startup failed: {e}")`.
#[macro_export]
macro_rules! error {
    ($component:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Error) {
            $crate::log::log($crate::log::Level::Error, $component, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($component:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Warn) {
            $crate::log::log($crate::log::Level::Warn, $component, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($component:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::log($crate::log::Level::Info, $component, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($component:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            $crate::log::log($crate::log::Level::Debug, $component, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert_eq!(parse_level("error"), Level::Error);
        assert_eq!(parse_level("WARN"), Level::Warn);
        assert_eq!(parse_level("debug"), Level::Debug);
        assert_eq!(parse_level("info"), Level::Info);
        assert_eq!(parse_level("garbage"), Level::Info);
    }

    #[test]
    fn macros_compile_and_filter() {
        // `enabled` gates argument evaluation: at the default level a
        // debug message must not evaluate its arguments.
        let mut evaluated = false;
        if enabled(Level::Debug) {
            evaluated = true;
        }
        crate::debug!("test", "never at default level {}", {
            evaluated = true;
            1
        });
        if std::env::var("XBOUND_LOG").map(|v| parse_level(&v)) != Ok(Level::Debug) {
            assert!(!evaluated || enabled(Level::Debug));
        }
        crate::info!("test", "info line {}", 42);
        crate::warn!("test", "warn line");
        crate::error!("test", "error line");
    }
}
