//! Output-directory resolution shared by the experiment drivers and the
//! co-analysis service.
//!
//! Two environment knobs control where generated artifacts land:
//!
//! * `XBOUND_RESULTS_DIR` — the experiment output directory (default
//!   `results/`, relative to the working directory). The experiment
//!   harness writes its tables and manifest here, and the directory is
//!   also the default *parent* of the service cache.
//! * `XBOUND_CACHE_DIR` — the service's on-disk bound-cache directory
//!   (default `<results dir>/cache`).
//!
//! Both resolvers create the directory if it is missing, so drivers work
//! from a fresh checkout (or a scratch working directory) without manual
//! setup.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Resolves (and creates) the experiment results directory:
/// `XBOUND_RESULTS_DIR` if set and non-empty, else `results`.
///
/// # Errors
///
/// Returns the creation error when the directory cannot be created —
/// callers decide whether a missing results dir is fatal.
pub fn results_dir() -> std::io::Result<PathBuf> {
    let dir = match std::env::var("XBOUND_RESULTS_DIR") {
        Ok(v) if !v.trim().is_empty() => PathBuf::from(v.trim()),
        _ => PathBuf::from("results"),
    };
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Per-process counter distinguishing concurrent temp files; combined
/// with the pid it makes every [`write_atomic`] scratch name unique even
/// when several daemons (or a daemon and a warm restart) share one cache
/// directory.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `bytes` to `path` atomically: the data lands in a uniquely
/// named sibling temp file (`.<name>.tmp-<pid>-<seq>`) which is then
/// renamed over `path`. Readers therefore never observe a partially
/// written file, and two writers racing on the same `path` each rename a
/// *complete* document into place (last rename wins — `rename(2)`
/// replaces an existing destination atomically on POSIX).
///
/// # Errors
///
/// Returns the underlying I/O error; the temp file is removed on a
/// failed rename.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("atomic");
    let tmp = dir.join(format!(
        ".{name}.tmp-{}-{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let res = std::fs::write(&tmp, bytes).and_then(|()| std::fs::rename(&tmp, path));
    if res.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    res
}

/// Resolves (and creates) the service bound-cache directory: `explicit`
/// if given, else `XBOUND_CACHE_DIR` if set and non-empty, else
/// `<results_dir>/cache`.
///
/// # Errors
///
/// Returns the creation error when the directory cannot be created.
pub fn cache_dir(explicit: Option<PathBuf>) -> std::io::Result<PathBuf> {
    let dir = if let Some(d) = explicit {
        d
    } else {
        match std::env::var("XBOUND_CACHE_DIR") {
            Ok(v) if !v.trim().is_empty() => PathBuf::from(v.trim()),
            _ => results_dir()?.join("cache"),
        }
    };
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_atomic_replaces_existing_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("xbound-outdirs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("doc.json");
        write_atomic(&path, b"first").unwrap();
        write_atomic(&path, b"second, over an existing file").unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"second, over an existing file"
        );
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.contains(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "stale temp files: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
