//! Output-directory resolution shared by the experiment drivers and the
//! co-analysis service.
//!
//! Two environment knobs control where generated artifacts land:
//!
//! * `XBOUND_RESULTS_DIR` — the experiment output directory (default
//!   `results/`, relative to the working directory). The experiment
//!   harness writes its tables and manifest here, and the directory is
//!   also the default *parent* of the service cache.
//! * `XBOUND_CACHE_DIR` — the service's on-disk bound-cache directory
//!   (default `<results dir>/cache`).
//!
//! Both resolvers create the directory if it is missing, so drivers work
//! from a fresh checkout (or a scratch working directory) without manual
//! setup.

use std::path::PathBuf;

/// Resolves (and creates) the experiment results directory:
/// `XBOUND_RESULTS_DIR` if set and non-empty, else `results`.
///
/// # Errors
///
/// Returns the creation error when the directory cannot be created —
/// callers decide whether a missing results dir is fatal.
pub fn results_dir() -> std::io::Result<PathBuf> {
    let dir = match std::env::var("XBOUND_RESULTS_DIR") {
        Ok(v) if !v.trim().is_empty() => PathBuf::from(v.trim()),
        _ => PathBuf::from("results"),
    };
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Resolves (and creates) the service bound-cache directory: `explicit`
/// if given, else `XBOUND_CACHE_DIR` if set and non-empty, else
/// `<results_dir>/cache`.
///
/// # Errors
///
/// Returns the creation error when the directory cannot be created.
pub fn cache_dir(explicit: Option<PathBuf>) -> std::io::Result<PathBuf> {
    let dir = if let Some(d) = explicit {
        d
    } else {
        match std::env::var("XBOUND_CACHE_DIR") {
            Ok(v) if !v.trim().is_empty() => PathBuf::from(v.trim()),
            _ => results_dir()?.join("cache"),
        }
    };
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}
