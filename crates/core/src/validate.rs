//! Validation of the X-based analysis (paper §3.4, Figs 12/13).
//!
//! Two checks demonstrate soundness:
//!
//! 1. **Toggle superset** — every gate that toggles in any input-based
//!    (concrete) execution must be marked potentially-toggled by the
//!    symbolic analysis;
//! 2. **Power dominance** — the per-cycle X-based peak-power bound must be
//!    ≥ the measured per-cycle power of any concrete execution, cycle by
//!    cycle along the path the concrete execution takes through the tree.

use crate::peak_power::PeakPowerResult;
use crate::tree::{ExecutionTree, SegmentEnd, SegmentId};
use xbound_cpu::Cpu;
use xbound_logic::{Frame, Lv};

/// Result of the toggle-superset check (Fig 12).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupersetReport {
    /// Nets toggled by both the concrete run and the symbolic analysis.
    pub common: usize,
    /// Nets only the symbolic analysis marks (the conservative margin).
    pub x_only: usize,
    /// Nets toggled concretely but *not* marked symbolically — must be
    /// empty for a sound analysis.
    pub violations: Vec<usize>,
}

impl SupersetReport {
    /// `true` when the superset property holds.
    pub fn is_sound(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Compares the potentially-toggled set against a concrete run's toggles.
pub fn check_toggle_superset(
    tree: &ExecutionTree,
    net_count: usize,
    concrete_frames: &[Frame],
) -> SupersetReport {
    let marked = tree.potentially_toggled_nets(net_count);
    let mut toggled = vec![false; net_count];
    for w in concrete_frames.windows(2) {
        for i in w[0].diff_indices(&w[1]) {
            toggled[i] = true;
        }
    }
    let mut common = 0;
    let mut x_only = 0;
    let mut violations = Vec::new();
    for i in 0..net_count {
        match (marked[i], toggled[i]) {
            (true, true) => common += 1,
            (true, false) => x_only += 1,
            (false, true) => violations.push(i),
            (false, false) => {}
        }
    }
    SupersetReport {
        common,
        x_only,
        violations,
    }
}

/// Follows a concrete run through the execution tree by matching branch
/// directions, returning `(segment, in-segment cycle)` for each concrete
/// cycle. Returns `None` when the concrete run leaves the explored tree
/// (which indicates an analysis bug).
pub fn follow_path(
    cpu: &Cpu,
    tree: &ExecutionTree,
    concrete_frames: &[Frame],
) -> Option<Vec<(SegmentId, usize)>> {
    let bt = cpu.io().branch_taken.index();
    let mut out = Vec::with_capacity(concrete_frames.len());
    let mut seg = tree.root();
    let mut ci = 0usize;
    for frame in concrete_frames {
        // Advance over merges: a merged segment's continuation is its
        // covering segment starting right after the branch frame.
        loop {
            if ci < tree.segment(seg).len() {
                break;
            }
            match tree.segment(seg).end {
                SegmentEnd::Fork {
                    taken, not_taken, ..
                } => {
                    let dir = frame.get(bt);
                    seg = match dir {
                        Lv::One => taken,
                        Lv::Zero => not_taken,
                        Lv::X => return None,
                    };
                    ci = 0;
                }
                SegmentEnd::Merged { into, .. } => {
                    // The covering segment's first frame is its branch
                    // cycle, which this path has already executed once.
                    seg = into;
                    ci = 1;
                }
                SegmentEnd::Halt | SegmentEnd::Truncated => return None,
            }
        }
        out.push((seg, ci));
        ci += 1;
    }
    Some(out)
}

/// Soundness checks of one concrete run against an analysis, as produced
/// by [`crate::Analysis::validate_population`] — the Fig 12 toggle
/// superset and the Fig 13 power dominance in one record.
#[derive(Debug, Clone, PartialEq)]
pub struct ConcreteRunCheck {
    /// Toggle-superset report (Fig 12).
    pub superset: SupersetReport,
    /// Power-dominance report (Fig 13); `None` when the concrete run left
    /// the explored tree, which indicates an analysis bug.
    pub dominance: Option<DominanceReport>,
}

impl ConcreteRunCheck {
    /// `true` when both soundness properties hold for this run.
    pub fn is_sound(&self) -> bool {
        self.superset.is_sound() && self.dominance.as_ref().is_some_and(|d| d.is_sound())
    }
}

/// Result of the power-dominance check (Fig 13).
#[derive(Debug, Clone, PartialEq)]
pub struct DominanceReport {
    /// Cycles compared.
    pub cycles: usize,
    /// Minimum margin `bound − measured` over all cycles, milliwatts.
    pub min_margin_mw: f64,
    /// Mean of `bound / measured` (indicates how tight the bound is).
    pub mean_ratio: f64,
    /// Cycles where measured exceeded the bound (must be empty).
    pub violations: Vec<usize>,
}

impl DominanceReport {
    /// `true` when the bound dominates the measured trace everywhere.
    pub fn is_sound(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks per-cycle dominance of the bound over a measured concrete trace.
///
/// `measured_mw[c]` must align with `concrete_frames[c]` (same simulation).
pub fn check_power_dominance(
    cpu: &Cpu,
    tree: &ExecutionTree,
    peak: &PeakPowerResult,
    concrete_frames: &[Frame],
    measured_mw: &[f64],
) -> Option<DominanceReport> {
    let path = follow_path(cpu, tree, concrete_frames)?;
    let mut min_margin = f64::INFINITY;
    let mut ratio_sum = 0.0;
    let mut ratio_n = 0usize;
    let mut violations = Vec::new();
    // Skip cycle 0 (no transitions by convention on both sides).
    for c in 1..path.len().min(measured_mw.len()) {
        let (sid, ci) = path[c];
        let bound = peak.bound_mw[sid.index()][ci];
        let meas = measured_mw[c];
        let margin = bound - meas;
        if margin < -1e-9 {
            violations.push(c);
        }
        min_margin = min_margin.min(margin);
        if meas > 1e-12 {
            ratio_sum += bound / meas;
            ratio_n += 1;
        }
    }
    Some(DominanceReport {
        cycles: path.len().saturating_sub(1),
        min_margin_mw: if min_margin.is_finite() {
            min_margin
        } else {
            0.0
        },
        mean_ratio: if ratio_n > 0 {
            ratio_sum / ratio_n as f64
        } else {
            1.0
        },
        violations,
    })
}
