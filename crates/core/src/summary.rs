//! A serializable summary of one co-analysis — the value the co-analysis
//! service caches and returns, and the bounds record `suite_summary`
//! publishes.
//!
//! [`Analysis`] itself borrows the system and holds the full annotated
//! execution tree; [`BoundsReport`] is the owned, wire-friendly subset:
//! the peak power / peak energy / NPE bounds plus the deterministic
//! exploration statistics. Its JSON form ([`BoundsReport::to_json`]) is
//! canonical — stable field order, exact-round-trip floats — so the same
//! analysis produces the same bytes whether it ran directly
//! (`suite_summary`), inside the daemon, or was replayed from the
//! daemon's on-disk cache.

use crate::jsonout::JsonWriter;
use crate::peak_power::{PeakEnergyResult, PeakPowerResult};
use crate::tree::ExecutionTree;
use crate::{Analysis, ExploreStats};

/// The owned, serializable bounds of one co-analysis.
///
/// Every field is deterministic: bit-identical at any `(threads, lanes)`
/// setting (the scheduling-dependent [`crate::BatchExploreStats`]
/// telemetry is deliberately excluded, so cached and fresh answers
/// compare equal).
#[derive(Debug, Clone, PartialEq)]
pub struct BoundsReport {
    /// Peak power bound, milliwatts.
    pub peak_mw: f64,
    /// Global cycle index of the peak.
    pub peak_cycle: u64,
    /// Normalized peak energy bound, J/cycle.
    pub npe_j_per_cycle: f64,
    /// Peak energy bound over a full execution, joules.
    pub peak_energy_j: f64,
    /// Cycles of the energy-maximizing path.
    pub energy_cycles: u64,
    /// Whether the peak-energy value iteration converged.
    pub converged: bool,
    /// Execution-tree segments.
    pub segments: u64,
    /// Total simulated cycles committed to the tree.
    pub cycles: u64,
    /// Forks encountered during exploration.
    pub forks: u64,
    /// States pruned by subsumption.
    pub merges: u64,
    /// States widened by the Chapter-6 heuristic.
    pub widenings: u64,
}

impl BoundsReport {
    /// Extracts the report from a finished analysis.
    pub fn from_analysis(a: &Analysis<'_>) -> BoundsReport {
        BoundsReport::from_parts(a.tree(), a.stats(), a.peak_power(), &a.peak_energy())
    }

    /// Assembles the report from the pipeline's parts — the
    /// operating-point sweep path, where one shared exploration feeds many
    /// per-corner Algorithm 2 / peak-energy results and no per-corner
    /// [`Analysis`] is ever materialized. [`BoundsReport::from_analysis`]
    /// delegates here, so both paths fill the fields identically.
    pub fn from_parts(
        tree: &ExecutionTree,
        stats: &ExploreStats,
        peak: &PeakPowerResult,
        energy: &PeakEnergyResult,
    ) -> BoundsReport {
        BoundsReport {
            peak_mw: peak.peak_mw,
            peak_cycle: peak.peak_cycle,
            npe_j_per_cycle: energy.npe_j_per_cycle,
            peak_energy_j: energy.peak_energy_j,
            energy_cycles: energy.cycles,
            converged: energy.converged,
            segments: tree.segments().len() as u64,
            cycles: stats.cycles,
            forks: stats.forks,
            merges: stats.merges,
            widenings: stats.widenings,
        }
    }

    /// Serializes the canonical single-line JSON object.
    ///
    /// Field order and number format are stable, and
    /// serialize → parse → serialize is the identity on bytes (floats use
    /// the shortest exact representation; see [`crate::jsonout`]) — the
    /// byte-identity contract between the direct path and the service.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::compact();
        self.write(&mut w);
        w.finish()
    }

    /// Writes the report as the next value of `w` (an object), for
    /// embedding inside a larger document.
    pub fn write(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_f64("peak_mw", self.peak_mw);
        w.field_u64("peak_cycle", self.peak_cycle);
        w.field_f64("npe_j_per_cycle", self.npe_j_per_cycle);
        w.field_f64("peak_energy_j", self.peak_energy_j);
        w.field_u64("energy_cycles", self.energy_cycles);
        w.field_bool("converged", self.converged);
        w.field_u64("segments", self.segments);
        w.field_u64("cycles", self.cycles);
        w.field_u64("forks", self.forks);
        w.field_u64("merges", self.merges);
        w.field_u64("widenings", self.widenings);
        w.end_object();
    }
}

/// The canonical one-line per-benchmark bounds record,
/// `{"name": ..., "bounds": {...}}` — shared by `suite_summary --bounds`
/// files and the co-analysis service's suite stream, so the two paths
/// can be diffed byte-for-byte (the CI service smoke contract).
pub fn bounds_line(name: &str, report: &BoundsReport) -> String {
    let mut w = JsonWriter::compact();
    w.begin_object();
    w.field_str("name", name);
    w.key("bounds");
    report.write(&mut w);
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BoundsReport {
        BoundsReport {
            peak_mw: 1.0 / 3.0,
            peak_cycle: 42,
            npe_j_per_cycle: 1.25e-13,
            peak_energy_j: 6.5e-9,
            energy_cycles: 1000,
            converged: true,
            segments: 7,
            cycles: 12345,
            forks: 3,
            merges: 2,
            widenings: 0,
        }
    }

    #[test]
    fn json_has_stable_order_and_reserializes_identically() {
        let r = sample();
        let s = r.to_json();
        assert!(s.starts_with("{\"peak_mw\": "), "{s}");
        assert!(s.contains("\"converged\": true"), "{s}");
        // Round-tripping the floats through text and re-serializing is
        // the identity on bytes.
        let peak: f64 = s
            .split("\"peak_mw\": ")
            .nth(1)
            .and_then(|t| t.split(',').next())
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(peak.to_bits(), r.peak_mw.to_bits());
        let again = BoundsReport { peak_mw: peak, ..r };
        assert_eq!(again.to_json(), s);
    }
}
