//! Minimal scoped worker-pool helpers (std-only, no external deps).
//!
//! Everything here is deliberately deterministic: [`par_map`] preserves
//! input order in its output regardless of which worker finishes first, so
//! callers produce identical artifacts at any thread count — including the
//! degenerate single-core case where the pool collapses to a plain loop.
//!
//! This module also resolves the two batching knobs of the suite drivers:
//! worker counts ([`resolve_threads`], `XBOUND_THREADS`) and concrete-run
//! lane widths ([`resolve_lanes`], `XBOUND_LANES`) — parallelism ×
//! bit-parallelism.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Upper bound on auto-detected worker counts ("a small worker pool").
pub const MAX_AUTO_THREADS: usize = 8;

/// Default lane width for batched concrete simulation.
pub const DEFAULT_LANES: usize = 32;

/// Resolves a thread-count knob.
///
/// `0` means *auto*: the `XBOUND_THREADS` environment variable if set to a
/// positive integer, otherwise [`std::thread::available_parallelism`],
/// capped at [`MAX_AUTO_THREADS`]. Any positive value is used as-is.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var("XBOUND_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_AUTO_THREADS)
}

/// The shared lane-knob cascade: explicit request → environment variable
/// → default, clamped to `1..=`[`xbound_logic::MAX_LANES`] (one bit per
/// lane in a `u64` plane pair).
fn resolve_lane_knob(requested: usize, env_var: &str, default: usize) -> usize {
    let lanes = if requested > 0 {
        requested
    } else if let Ok(v) = std::env::var(env_var) {
        v.trim().parse::<usize>().unwrap_or(0)
    } else {
        0
    };
    let lanes = if lanes == 0 { default } else { lanes };
    lanes.clamp(1, xbound_logic::MAX_LANES)
}

/// Resolves the batched concrete-simulation lane-width knob.
///
/// `0` means *auto*: the `XBOUND_LANES` environment variable if set to a
/// positive integer, otherwise [`DEFAULT_LANES`]. Results are
/// bit-identical at any lane width; the knob only trades memory for
/// gate-pass sharing.
pub fn resolve_lanes(requested: usize) -> usize {
    resolve_lane_knob(requested, "XBOUND_LANES", DEFAULT_LANES)
}

/// Default lane width for batched symbolic exploration.
///
/// Narrower than [`DEFAULT_LANES`]: the DFS frontier rarely exposes more
/// than a handful of pending branches at once, and (unlike concrete
/// populations, which run in lock-step from one reset) branches sit at
/// different program points, so their dirty cones overlap less — 8 lanes
/// captures nearly all of the measured pass sharing.
pub const DEFAULT_EXPLORE_LANES: usize = 8;

/// Resolves the symbolic-exploration lane-width knob
/// ([`crate::ExploreConfig::lanes`]).
///
/// `0` means *auto*: the `XBOUND_EXPLORE_LANES` environment variable if
/// set to a positive integer, otherwise [`DEFAULT_EXPLORE_LANES`].
/// Execution trees, exploration statistics, and every downstream
/// peak-power table are bit-identical at any width; the knob only
/// controls how many pending execution-tree branches share one gate pass.
pub fn resolve_explore_lanes(requested: usize) -> usize {
    resolve_lane_knob(requested, "XBOUND_EXPLORE_LANES", DEFAULT_EXPLORE_LANES)
}

/// Renders a panic payload for re-raising with job context (shared by
/// [`par_map_labeled`], the symbolic explorer's speculative pool, and the
/// co-analysis service's job workers).
pub fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Order-preserving parallel map over `items` with a scoped worker pool.
///
/// `f` receives `(index, item)` and may run on any worker; the result
/// vector is indexed like the input. `threads` follows
/// [`resolve_threads`] (`0` = auto). With one thread (or one item) no
/// threads are spawned at all.
///
/// # Panics
///
/// A panicking `f` propagates to the caller with the failing item's index
/// in the message (`par_map: job 3 panicked: ...`) rather than a bare
/// scope-join panic; remaining queued jobs are abandoned. Use
/// [`par_map_labeled`] to name the failing item (e.g. its benchmark).
pub fn par_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    par_map_labeled(threads, items, |_, _| String::new(), f)
}

/// [`par_map`] with a label for panic diagnostics: `label(index, &item)`
/// is evaluated before the item is consumed and appears in the propagated
/// panic message when that job panics
/// (`par_map: job 2 (binSearch) panicked: ...`).
pub fn par_map_labeled<T, R, F, L>(threads: usize, items: Vec<T>, label: L, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
    L: Fn(usize, &T) -> String + Sync,
{
    let n = items.len();
    let threads = resolve_threads(threads).min(n.max(1));
    let run_caught = |i: usize, x: T| -> Result<R, (usize, String, String)> {
        let lbl = label(i, &x);
        catch_unwind(AssertUnwindSafe(|| f(i, x)))
            .map_err(|p| (i, lbl, payload_message(p.as_ref())))
    };
    let raise = |(i, lbl, msg): (usize, String, String)| -> ! {
        if lbl.is_empty() {
            panic!("par_map: job {i} panicked: {msg}")
        } else {
            panic!("par_map: job {i} ({lbl}) panicked: {msg}")
        }
    };
    if threads <= 1 {
        let mut out = Vec::with_capacity(n);
        for (i, x) in items.into_iter().enumerate() {
            match run_caught(i, x) {
                Ok(r) => out.push(r),
                Err(ctx) => raise(ctx),
            }
        }
        return out;
    }
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    let failed = AtomicBool::new(false);
    let panics: Mutex<Vec<(usize, String, String)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                if failed.load(Ordering::Relaxed) {
                    break; // abandon remaining jobs after a failure
                }
                let job = queue.lock().expect("queue lock").pop_front();
                let Some((i, x)) = job else { break };
                match run_caught(i, x) {
                    Ok(r) => results.lock().expect("results lock")[i] = Some(r),
                    Err(ctx) => {
                        failed.store(true, Ordering::Relaxed);
                        panics.lock().expect("panic lock").push(ctx);
                    }
                }
            });
        }
    });
    let mut panics = panics.into_inner().expect("pool joined");
    if !panics.is_empty() {
        panics.sort_by_key(|(i, _, _)| *i);
        raise(panics.swap_remove(0));
    }
    results
        .into_inner()
        .expect("pool joined")
        .into_iter()
        .map(|r| r.expect("every job ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let out = par_map(4, (0..100).collect::<Vec<i32>>(), |i, x| {
            assert_eq!(i as i32, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<i32>>());
    }

    #[test]
    fn par_map_single_thread_matches() {
        let a = par_map(1, vec![1, 2, 3], |_, x| x + 1);
        let b = par_map(3, vec![1, 2, 3], |_, x| x + 1);
        assert_eq!(a, b);
    }

    #[test]
    fn resolve_threads_prefers_explicit() {
        assert_eq!(resolve_threads(5), 5);
        assert!(resolve_threads(0) >= 1);
        assert!(resolve_threads(0) <= MAX_AUTO_THREADS);
    }

    #[test]
    fn resolve_lanes_clamps_to_word_width() {
        assert_eq!(resolve_lanes(1), 1);
        assert_eq!(resolve_lanes(200), xbound_logic::MAX_LANES);
        assert!(resolve_lanes(0) >= 1);
        assert!(resolve_lanes(0) <= xbound_logic::MAX_LANES);
    }

    #[test]
    fn resolve_explore_lanes_clamps_to_word_width() {
        assert_eq!(resolve_explore_lanes(1), 1);
        assert_eq!(resolve_explore_lanes(8), 8);
        assert_eq!(resolve_explore_lanes(200), xbound_logic::MAX_LANES);
        assert!(resolve_explore_lanes(0) >= 1);
        assert!(resolve_explore_lanes(0) <= xbound_logic::MAX_LANES);
    }

    fn catch_message(job: impl FnOnce() + Send) -> String {
        let err = catch_unwind(AssertUnwindSafe(job)).expect_err("must panic");
        payload_message(err.as_ref())
    }

    #[test]
    fn panics_carry_item_index_and_label() {
        for threads in [1, 4] {
            let msg = catch_message(|| {
                let names = ["alpha", "beta", "gamma"];
                let _ = par_map_labeled(
                    threads,
                    vec![0usize, 1, 2],
                    |i, _| names[i].to_string(),
                    |_, x| {
                        if x == 1 {
                            panic!("boom {x}");
                        }
                        x
                    },
                );
            });
            assert!(
                msg.contains("job 1") && msg.contains("beta") && msg.contains("boom 1"),
                "missing context at {threads} threads: {msg}"
            );
        }
    }

    #[test]
    fn unlabeled_panics_carry_index() {
        let msg = catch_message(|| {
            let _ = par_map(2, vec![1, 2, 3], |_, x: i32| {
                if x == 3 {
                    panic!("bad item");
                }
                x
            });
        });
        assert!(msg.contains("job 2") && msg.contains("bad item"), "{msg}");
    }
}
