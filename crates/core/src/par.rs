//! Minimal scoped worker-pool helpers (std-only, no external deps).
//!
//! Everything here is deliberately deterministic: [`par_map`] preserves
//! input order in its output regardless of which worker finishes first, so
//! callers produce identical artifacts at any thread count — including the
//! degenerate single-core case where the pool collapses to a plain loop.
//!
//! This module also resolves the two batching knobs of the suite drivers:
//! worker counts ([`resolve_threads`], `XBOUND_THREADS`) and concrete-run
//! lane widths ([`resolve_lanes`], `XBOUND_LANES`) — parallelism ×
//! bit-parallelism.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Upper bound on auto-detected worker counts ("a small worker pool").
pub const MAX_AUTO_THREADS: usize = 8;

/// Default lane width for batched concrete simulation.
pub const DEFAULT_LANES: usize = 32;

static AUTO_THREADS: OnceLock<usize> = OnceLock::new();

/// Resolves a thread-count knob.
///
/// `0` means *auto*: the `XBOUND_THREADS` environment variable if set to a
/// positive integer, otherwise [`std::thread::available_parallelism`],
/// capped at [`MAX_AUTO_THREADS`]. Any positive value is used as-is.
///
/// The auto resolution (environment lookup + parallelism probe) runs once
/// per process and is cached; every later `resolve_threads(0)` call is a
/// plain atomic load. Drivers that want to report the effective worker
/// count (e.g. `suite_summary --json`) can therefore call this freely.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    *AUTO_THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("XBOUND_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(MAX_AUTO_THREADS)
    })
}

/// Floor for the auto-resolved speculation window (see
/// [`resolve_speculation_window`]).
pub const MIN_AUTO_SPECULATION_WINDOW: usize = 32;

/// Resolves the out-of-order completion-buffer bound of the work-stealing
/// explorer ([`crate::ExploreConfig::speculation_window`]).
///
/// `0` means *auto*: the `XBOUND_SPECULATION_WINDOW` environment variable
/// if set to a positive integer, otherwise `4 × threads × lanes` with a
/// floor of [`MIN_AUTO_SPECULATION_WINDOW`] — enough headroom for every
/// worker to keep a few batches in flight past the committed frontier.
/// Any positive value is used as-is (a tiny window throttles speculation
/// but never changes results). Irrelevant at `threads <= 1`, where the
/// driver explores inline without a pool.
pub fn resolve_speculation_window(requested: usize, threads: usize, lanes: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var("XBOUND_SPECULATION_WINDOW") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    (4 * threads * lanes).max(MIN_AUTO_SPECULATION_WINDOW)
}

/// The shared lane-knob cascade: explicit request → environment variable
/// → default, clamped to `1..=`[`xbound_logic::MAX_LANES`] (one bit per
/// lane in a `u64` plane pair).
fn resolve_lane_knob(requested: usize, env_var: &str, default: usize) -> usize {
    let lanes = if requested > 0 {
        requested
    } else if let Ok(v) = std::env::var(env_var) {
        v.trim().parse::<usize>().unwrap_or(0)
    } else {
        0
    };
    let lanes = if lanes == 0 { default } else { lanes };
    lanes.clamp(1, xbound_logic::MAX_LANES)
}

/// Resolves the batched concrete-simulation lane-width knob.
///
/// `0` means *auto*: the `XBOUND_LANES` environment variable if set to a
/// positive integer, otherwise [`DEFAULT_LANES`]. Results are
/// bit-identical at any lane width; the knob only trades memory for
/// gate-pass sharing.
pub fn resolve_lanes(requested: usize) -> usize {
    resolve_lane_knob(requested, "XBOUND_LANES", DEFAULT_LANES)
}

/// Default lane width for batched symbolic exploration.
///
/// Narrower than [`DEFAULT_LANES`]: the DFS frontier rarely exposes more
/// than a handful of pending branches at once, and (unlike concrete
/// populations, which run in lock-step from one reset) branches sit at
/// different program points, so their dirty cones overlap less — 8 lanes
/// captures nearly all of the measured pass sharing.
pub const DEFAULT_EXPLORE_LANES: usize = 8;

/// Resolves the symbolic-exploration lane-width knob
/// ([`crate::ExploreConfig::lanes`]).
///
/// `0` means *auto*: the `XBOUND_EXPLORE_LANES` environment variable if
/// set to a positive integer, otherwise [`DEFAULT_EXPLORE_LANES`].
/// Execution trees, exploration statistics, and every downstream
/// peak-power table are bit-identical at any width; the knob only
/// controls how many pending execution-tree branches share one gate pass.
pub fn resolve_explore_lanes(requested: usize) -> usize {
    resolve_lane_knob(requested, "XBOUND_EXPLORE_LANES", DEFAULT_EXPLORE_LANES)
}

/// Renders a panic payload for re-raising with job context (shared by
/// [`par_map_labeled`], the symbolic explorer's speculative pool, and the
/// co-analysis service's job workers).
pub fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Renders the panic context of a work-stealing explorer branch for
/// re-raising on the commit thread: which execution-tree segment the
/// branch became, which worker simulated it (`thief`), and whose deque it
/// was claimed from (`victim`). Worker id `0` is the driver thread; queue
/// id `0` is the shared injector seeded at fork commits.
pub fn explorer_panic_context(segment: usize, thief: usize, victim: usize, msg: &str) -> String {
    let who = if thief == 0 {
        "explorer driver".to_string()
    } else {
        format!("explorer worker {thief}")
    };
    let provenance = match (thief, victim) {
        (0, _) => "claimed inline".to_string(),
        (t, v) if t == v => "own deque".to_string(),
        (_, 0) => "stolen from the injector".to_string(),
        (_, v) => format!("stolen from worker {v}"),
    };
    format!("{who} panicked (segment {segment}, {provenance}): {msg}")
}

/// A mutex-guarded deque of pending work for one work-stealing
/// participant.
///
/// The owner pushes and pops at the *back* (LIFO: the most recently
/// discovered fork is the cache-warm one); thieves take from the *front*
/// (FIFO: the oldest entry is the shallowest-forked region, whose subtree
/// is the largest — stealing it amortizes a whole `PathRunner` batch
/// fill). One `Mutex<VecDeque>` per participant keeps contention to
/// owner-vs-single-thief instead of everyone-vs-one-central-queue;
/// "lock-free-ish" is as far as std-only goes.
pub struct StealDeque<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> Default for StealDeque<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> StealDeque<T> {
    /// An empty deque.
    pub fn new() -> Self {
        StealDeque {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Number of queued entries (a racy snapshot; used for backpressure
    /// heuristics only).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("deque lock").len()
    }

    /// True when nothing is queued (same racy snapshot as [`Self::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Owner push: newest work at the back.
    pub fn push_back(&self, item: T) {
        self.inner.lock().expect("deque lock").push_back(item);
    }

    /// Owner claim: up to `max` of the newest entries (LIFO).
    pub fn pop_back_batch(&self, max: usize) -> Vec<T> {
        let mut q = self.inner.lock().expect("deque lock");
        let n = q.len().min(max);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(q.pop_back().expect("len checked"));
        }
        out
    }

    /// Thief claim: up to `min(max, ceil(len / 2))` of the *oldest*
    /// entries — the victim keeps the newer (cache-warm) half of its
    /// region, the thief walks away with the shallowest branches.
    pub fn steal_front(&self, max: usize) -> Vec<T> {
        let mut q = self.inner.lock().expect("deque lock");
        let n = q.len().div_ceil(2).min(max);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(q.pop_front().expect("len checked"));
        }
        out
    }

    /// Removes and returns the first entry matching `pred`, front to back.
    pub fn remove_where(&self, mut pred: impl FnMut(&T) -> bool) -> Option<T> {
        let mut q = self.inner.lock().expect("deque lock");
        let idx = q.iter().position(&mut pred)?;
        q.remove(idx)
    }

    /// Keeps only entries matching `pred` (used to sweep speculation that
    /// a widening/merge commit made unreachable).
    pub fn retain(&self, pred: impl FnMut(&T) -> bool) {
        self.inner.lock().expect("deque lock").retain(pred);
    }

    /// True if any entry matches `pred`.
    pub fn any(&self, pred: impl FnMut(&T) -> bool) -> bool {
        self.inner.lock().expect("deque lock").iter().any(pred)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Victim visit order for work-stealing participant `me` among `queues`
/// deques (index 0 is the shared injector, never an owner).
///
/// With `seed == 0` (production): the injector first — fork-commit seeds
/// are the shallowest regions in the system — then the other workers in
/// ring order starting after `me`, so concurrent thieves fan out instead
/// of convoying on one victim. With `seed != 0` (the test-only
/// steal-interleaving shuffle, [`crate::ExploreConfig::steal_seed`]): a
/// deterministic Fisher–Yates shuffle of the same candidates keyed on
/// `(seed, me, round)`, so invariance tests can drive many distinct steal
/// interleavings reproducibly.
pub fn victim_order(me: usize, queues: usize, seed: u64, round: u64) -> Vec<usize> {
    let mut order: Vec<usize> = Vec::with_capacity(queues.saturating_sub(1));
    order.push(0);
    let base = me.max(1) - 1;
    for off in 1..queues {
        let v = 1 + (base + off) % (queues - 1);
        if v != me {
            order.push(v);
        }
    }
    if seed != 0 && order.len() > 1 {
        let mut s = splitmix64(seed ^ (me as u64).wrapping_mul(0x9e37_79b9) ^ round);
        for i in (1..order.len()).rev() {
            s = splitmix64(s);
            let j = (s % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
    }
    order
}

/// Order-preserving parallel map over `items` with a scoped worker pool.
///
/// `f` receives `(index, item)` and may run on any worker; the result
/// vector is indexed like the input. `threads` follows
/// [`resolve_threads`] (`0` = auto). With one thread (or one item) no
/// threads are spawned at all.
///
/// # Panics
///
/// A panicking `f` propagates to the caller with the failing item's index
/// in the message (`par_map: job 3 panicked: ...`) rather than a bare
/// scope-join panic; remaining queued jobs are abandoned. Use
/// [`par_map_labeled`] to name the failing item (e.g. its benchmark).
pub fn par_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    par_map_labeled(threads, items, |_, _| String::new(), f)
}

/// [`par_map`] with a label for panic diagnostics: `label(index, &item)`
/// is evaluated before the item is consumed and appears in the propagated
/// panic message when that job panics
/// (`par_map: job 2 (binSearch) panicked: ...`).
pub fn par_map_labeled<T, R, F, L>(threads: usize, items: Vec<T>, label: L, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
    L: Fn(usize, &T) -> String + Sync,
{
    let n = items.len();
    let threads = resolve_threads(threads).min(n.max(1));
    let run_caught = |i: usize, x: T| -> Result<R, (usize, String, String)> {
        let lbl = label(i, &x);
        catch_unwind(AssertUnwindSafe(|| f(i, x)))
            .map_err(|p| (i, lbl, payload_message(p.as_ref())))
    };
    let raise = |(i, lbl, msg): (usize, String, String)| -> ! {
        if lbl.is_empty() {
            panic!("par_map: job {i} panicked: {msg}")
        } else {
            panic!("par_map: job {i} ({lbl}) panicked: {msg}")
        }
    };
    if threads <= 1 {
        let mut out = Vec::with_capacity(n);
        for (i, x) in items.into_iter().enumerate() {
            match run_caught(i, x) {
                Ok(r) => out.push(r),
                Err(ctx) => raise(ctx),
            }
        }
        return out;
    }
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    let failed = AtomicBool::new(false);
    let panics: Mutex<Vec<(usize, String, String)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for w in 0..threads {
            // Named so observability tooling (trace thread tracks, OS
            // profilers) can tell pool workers apart.
            std::thread::Builder::new()
                .name(format!("xbound-par-{w}"))
                .spawn_scoped(s, || loop {
                    if failed.load(Ordering::Relaxed) {
                        break; // abandon remaining jobs after a failure
                    }
                    let job = queue.lock().expect("queue lock").pop_front();
                    let Some((i, x)) = job else { break };
                    match run_caught(i, x) {
                        Ok(r) => results.lock().expect("results lock")[i] = Some(r),
                        Err(ctx) => {
                            failed.store(true, Ordering::Relaxed);
                            panics.lock().expect("panic lock").push(ctx);
                        }
                    }
                })
                .expect("spawn pool worker");
        }
    });
    let mut panics = panics.into_inner().expect("pool joined");
    if !panics.is_empty() {
        panics.sort_by_key(|(i, _, _)| *i);
        raise(panics.swap_remove(0));
    }
    results
        .into_inner()
        .expect("pool joined")
        .into_iter()
        .map(|r| r.expect("every job ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let out = par_map(4, (0..100).collect::<Vec<i32>>(), |i, x| {
            assert_eq!(i as i32, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<i32>>());
    }

    #[test]
    fn par_map_single_thread_matches() {
        let a = par_map(1, vec![1, 2, 3], |_, x| x + 1);
        let b = par_map(3, vec![1, 2, 3], |_, x| x + 1);
        assert_eq!(a, b);
    }

    #[test]
    fn resolve_threads_prefers_explicit() {
        assert_eq!(resolve_threads(5), 5);
        assert!(resolve_threads(0) >= 1);
        assert!(resolve_threads(0) <= MAX_AUTO_THREADS);
    }

    #[test]
    fn resolve_threads_auto_is_cached() {
        // The auto resolution must be stable within a process: repeated
        // calls return the cached value without re-reading the env.
        assert_eq!(resolve_threads(0), resolve_threads(0));
    }

    #[test]
    fn resolve_speculation_window_has_sane_auto() {
        assert_eq!(resolve_speculation_window(7, 4, 8), 7);
        let auto = resolve_speculation_window(0, 4, 8);
        assert!(auto >= MIN_AUTO_SPECULATION_WINDOW, "{auto}");
        assert!(resolve_speculation_window(0, 1, 1) >= MIN_AUTO_SPECULATION_WINDOW);
    }

    #[test]
    fn steal_deque_owner_lifo_thief_fifo() {
        let q: StealDeque<u32> = StealDeque::new();
        for v in 0..6 {
            q.push_back(v);
        }
        // Thief takes the oldest half, front first.
        assert_eq!(q.steal_front(8), vec![0, 1, 2]);
        // Owner pops newest first.
        assert_eq!(q.pop_back_batch(2), vec![5, 4]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.remove_where(|v| *v == 3), Some(3));
        assert!(q.is_empty());
        assert_eq!(q.steal_front(4), Vec::<u32>::new());
    }

    #[test]
    fn steal_deque_steals_at_most_half_rounded_up() {
        let q: StealDeque<u32> = StealDeque::new();
        q.push_back(1);
        assert_eq!(q.steal_front(8), vec![1]); // ceil(1/2) = 1
        for v in 0..5 {
            q.push_back(v);
        }
        assert_eq!(q.steal_front(8).len(), 3); // ceil(5/2)
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn victim_order_ring_covers_all_others() {
        // seed 0: injector first, then the other workers, never self.
        for me in 1..4 {
            let order = victim_order(me, 4, 0, 0);
            assert_eq!(order[0], 0, "injector first: {order:?}");
            let mut sorted = order.clone();
            sorted.sort_unstable();
            let expected: Vec<usize> = (0..4).filter(|v| *v != me).collect();
            assert_eq!(sorted, expected, "me={me}");
        }
        assert_eq!(victim_order(1, 2, 0, 0), vec![0]);
    }

    #[test]
    fn victim_order_seeded_is_deterministic_and_complete() {
        let a = victim_order(2, 6, 0xfeed, 3);
        let b = victim_order(2, 6, 0xfeed, 3);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 3, 4, 5]);
        // Different rounds eventually produce different interleavings.
        let varied = (0..16).any(|round| victim_order(2, 6, 0xfeed, round) != a);
        assert!(varied, "seeded shuffle never varied across rounds");
    }

    #[test]
    fn explorer_panic_context_names_segment_and_workers() {
        let own = explorer_panic_context(7, 2, 2, "boom");
        assert!(own.contains("worker 2") && own.contains("segment 7") && own.contains("own deque"));
        let stolen = explorer_panic_context(3, 1, 2, "boom");
        assert!(stolen.contains("worker 1") && stolen.contains("stolen from worker 2"));
        let injector = explorer_panic_context(3, 1, 0, "boom");
        assert!(injector.contains("stolen from the injector"), "{injector}");
        let driver = explorer_panic_context(9, 0, 0, "boom");
        assert!(
            driver.contains("driver") && driver.contains("segment 9"),
            "{driver}"
        );
    }

    #[test]
    fn resolve_lanes_clamps_to_word_width() {
        assert_eq!(resolve_lanes(1), 1);
        assert_eq!(resolve_lanes(200), xbound_logic::MAX_LANES);
        assert!(resolve_lanes(0) >= 1);
        assert!(resolve_lanes(0) <= xbound_logic::MAX_LANES);
    }

    #[test]
    fn resolve_explore_lanes_clamps_to_word_width() {
        assert_eq!(resolve_explore_lanes(1), 1);
        assert_eq!(resolve_explore_lanes(8), 8);
        assert_eq!(resolve_explore_lanes(200), xbound_logic::MAX_LANES);
        assert!(resolve_explore_lanes(0) >= 1);
        assert!(resolve_explore_lanes(0) <= xbound_logic::MAX_LANES);
    }

    fn catch_message(job: impl FnOnce() + Send) -> String {
        let err = catch_unwind(AssertUnwindSafe(job)).expect_err("must panic");
        payload_message(err.as_ref())
    }

    #[test]
    fn panics_carry_item_index_and_label() {
        for threads in [1, 4] {
            let msg = catch_message(|| {
                let names = ["alpha", "beta", "gamma"];
                let _ = par_map_labeled(
                    threads,
                    vec![0usize, 1, 2],
                    |i, _| names[i].to_string(),
                    |_, x| {
                        if x == 1 {
                            panic!("boom {x}");
                        }
                        x
                    },
                );
            });
            assert!(
                msg.contains("job 1") && msg.contains("beta") && msg.contains("boom 1"),
                "missing context at {threads} threads: {msg}"
            );
        }
    }

    #[test]
    fn unlabeled_panics_carry_index() {
        let msg = catch_message(|| {
            let _ = par_map(2, vec![1, 2, 3], |_, x: i32| {
                if x == 3 {
                    panic!("bad item");
                }
                x
            });
        });
        assert!(msg.contains("job 2") && msg.contains("bad item"), "{msg}");
    }
}
