//! Minimal scoped worker-pool helpers (std-only, no external deps).
//!
//! Everything here is deliberately deterministic: [`par_map`] preserves
//! input order in its output regardless of which worker finishes first, so
//! callers produce identical artifacts at any thread count — including the
//! degenerate single-core case where the pool collapses to a plain loop.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Upper bound on auto-detected worker counts ("a small worker pool").
pub const MAX_AUTO_THREADS: usize = 8;

/// Resolves a thread-count knob.
///
/// `0` means *auto*: the `XBOUND_THREADS` environment variable if set to a
/// positive integer, otherwise [`std::thread::available_parallelism`],
/// capped at [`MAX_AUTO_THREADS`]. Any positive value is used as-is.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var("XBOUND_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_AUTO_THREADS)
}

/// Order-preserving parallel map over `items` with a scoped worker pool.
///
/// `f` receives `(index, item)` and may run on any worker; the result
/// vector is indexed like the input. `threads` follows
/// [`resolve_threads`] (`0` = auto). With one thread (or one item) no
/// threads are spawned at all. A panicking `f` propagates to the caller
/// when the scope joins.
pub fn par_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let threads = resolve_threads(threads).min(n.max(1));
    if threads <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .collect();
    }
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let job = queue.lock().expect("queue lock").pop_front();
                let Some((i, x)) = job else { break };
                let r = f(i, x);
                results.lock().expect("results lock")[i] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .expect("pool joined")
        .into_iter()
        .map(|r| r.expect("every job ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let out = par_map(4, (0..100).collect::<Vec<i32>>(), |i, x| {
            assert_eq!(i as i32, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<i32>>());
    }

    #[test]
    fn par_map_single_thread_matches() {
        let a = par_map(1, vec![1, 2, 3], |_, x| x + 1);
        let b = par_map(3, vec![1, 2, 3], |_, x| x + 1);
        assert_eq!(a, b);
    }

    #[test]
    fn resolve_threads_prefers_explicit() {
        assert_eq!(resolve_threads(5), 5);
        assert!(resolve_threads(0) >= 1);
        assert!(resolve_threads(0) <= MAX_AUTO_THREADS);
    }
}
