//! The annotated symbolic execution tree of Algorithm 1.
//!
//! The tree is stored as a set of [`Segment`]s: maximal fork-free runs of
//! cycles. Each segment holds the settled value [`Frame`] of every cycle it
//! covers. A segment ends in one of the [`SegmentEnd`] outcomes:
//! completion of the application, a fork on an input-dependent branch, or a
//! merge into an already-explored state (the memoization of Algorithm 1,
//! which is what lets input-dependent loops terminate).

use xbound_logic::Frame;

/// Index of a segment in the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegmentId(pub u32);

impl SegmentId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Which way a fork went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ForkChoice {
    /// `branch_taken` forced to 1.
    Taken,
    /// `branch_taken` forced to 0.
    NotTaken,
}

/// How a segment ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentEnd {
    /// The application reached its final self-loop (`jmp $`).
    Halt,
    /// Input-dependent branch: both directions continue in child segments.
    Fork {
        /// Program counter of the branch instruction.
        branch_pc: u16,
        /// Child segment for `branch_taken = 1`.
        taken: SegmentId,
        /// Child segment for `branch_taken = 0`.
        not_taken: SegmentId,
    },
    /// The post-branch state is covered by an already-explored state: the
    /// continuation is the covering segment (possibly an ancestor — a loop).
    Merged {
        /// Segment whose explored state covers this one.
        into: SegmentId,
        /// Program counter after the branch.
        at_pc: u16,
        /// `true` when the merged state was widened first (Ch. 6 heuristic).
        widened: bool,
    },
    /// Exploration stopped at the cycle budget (bound still sound for the
    /// explored prefix; reported as an error by default).
    Truncated,
}

/// A fork-free run of simulated cycles.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Parent segment and the fork direction that led here (None for root).
    pub parent: Option<(SegmentId, ForkChoice)>,
    /// Global cycle index of `frames[0]` (root starts at 0).
    pub start_cycle: u64,
    /// Settled per-cycle frames (including the forced branch cycle for
    /// fork children).
    pub frames: Vec<Frame>,
    /// How the segment ends.
    pub end: SegmentEnd,
}

impl Segment {
    /// Number of cycles covered.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` when the segment covers no cycles.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Global cycle index of frame `i`.
    pub fn global_cycle(&self, i: usize) -> u64 {
        self.start_cycle + i as u64
    }
}

/// The annotated execution tree.
#[derive(Debug, Clone)]
pub struct ExecutionTree {
    segments: Vec<Segment>,
}

impl ExecutionTree {
    pub(crate) fn new() -> ExecutionTree {
        ExecutionTree {
            segments: Vec::new(),
        }
    }

    pub(crate) fn push(&mut self, seg: Segment) -> SegmentId {
        self.segments.push(seg);
        SegmentId((self.segments.len() - 1) as u32)
    }

    pub(crate) fn get_mut(&mut self, id: SegmentId) -> &mut Segment {
        &mut self.segments[id.index()]
    }

    /// All segments; index by [`SegmentId`]. Segment 0 is the root.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// One segment.
    pub fn segment(&self, id: SegmentId) -> &Segment {
        &self.segments[id.index()]
    }

    /// The root segment id.
    pub fn root(&self) -> SegmentId {
        SegmentId(0)
    }

    /// Total simulated cycles across all segments.
    pub fn total_cycles(&self) -> u64 {
        self.segments.iter().map(|s| s.len() as u64).sum()
    }

    /// Number of forks in the tree.
    pub fn fork_count(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| matches!(s.end, SegmentEnd::Fork { .. }))
            .count()
    }

    /// Number of merges (memoization hits).
    pub fn merge_count(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| matches!(s.end, SegmentEnd::Merged { .. }))
            .count()
    }

    /// Frame preceding `seg`'s first frame (the parent's last frame), if any.
    pub fn boundary_prev(&self, id: SegmentId) -> Option<&Frame> {
        let seg = self.segment(id);
        let (pid, _) = seg.parent?;
        self.segment(pid).frames.last()
    }

    /// Iterates `(segment id, cycle index, frame)` in depth-first order —
    /// the "flattened execution trace" of Algorithm 2.
    pub fn flattened(&self) -> impl Iterator<Item = (SegmentId, usize, &Frame)> {
        // DFS order by construction: children are pushed after parents and
        // exploration is depth-first, so plain index order is a valid
        // flattening.
        self.segments.iter().enumerate().flat_map(|(si, seg)| {
            seg.frames
                .iter()
                .enumerate()
                .map(move |(ci, f)| (SegmentId(si as u32), ci, f))
        })
    }

    /// The per-gate *potentially-toggled* annotation of Algorithm 1: a net
    /// is potentially active at a cycle if its value changed from the
    /// previous cycle or either endpoint is X.
    ///
    /// Returns one `bool` per net: `true` if the net can possibly toggle at
    /// any point in any execution.
    pub fn potentially_toggled_nets(&self, net_count: usize) -> Vec<bool> {
        let mut out = vec![false; net_count];
        for (id, seg) in self.segments.iter().enumerate() {
            let boundary = self.boundary_prev(SegmentId(id as u32));
            for (ci, cur) in seg.frames.iter().enumerate() {
                let prev: Option<&Frame> = if ci == 0 {
                    boundary
                } else {
                    Some(&seg.frames[ci - 1])
                };
                let Some(prev) = prev else { continue };
                for i in prev.diff_indices(cur) {
                    out[i] = true;
                }
                // X endpoints can toggle even when structurally equal.
                for (i, o) in out.iter_mut().enumerate() {
                    if !*o
                        && (cur.get(i) == xbound_logic::Lv::X || prev.get(i) == xbound_logic::Lv::X)
                    {
                        *o = true;
                    }
                }
            }
        }
        out
    }
}
