//! Peak-power software optimizations (paper §3.5 / §5.1 / Fig 18).
//!
//! Three source-level transforms, each targeting an instruction pattern
//! that the COI analysis identifies as a peak-power culprit:
//!
//! * **OPT1 — register-indexed loads**: `mov K(rN), dst` performs address
//!   generation, memory read, and execute back-to-back; splitting the
//!   address computation into a scratch register spreads the activity over
//!   more cycles.
//! * **OPT2 — POP split**: `pop dst` (`mov @sp+, dst`) drives the data and
//!   address buses while simultaneously incrementing SP; splitting into
//!   `mov @sp, dst` + `add #2, sp` removes the simultaneous activity.
//! * **OPT3 — multiplier NOP**: back-to-back `mov …, &OP2` / `mov &RESLO…`
//!   keeps the multiplier and the core simultaneously active; inserting a
//!   `nop` separates the peaks.
//!
//! [`optimize_program`] applies candidate transforms, re-runs the full
//! X-based analysis, and **keeps only transforms that actually reduce the
//! peak-power bound** — exactly the paper's accept policy. The report also
//! quantifies performance and energy overheads via the golden-model ISS.

use crate::{AnalysisError, CoAnalysis, UlpSystem};
use xbound_msp430::iss::Iss;
use xbound_msp430::{assemble, memmap, AsmError, Program};

/// Which transform a rewrite applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptKind {
    /// Split register-indexed loads (Fig 18a).
    IndexedLoad,
    /// Split POP into move + SP increment (Fig 18b).
    PopSplit,
    /// Insert a NOP between multiplier trigger and result read (Fig 18c).
    MultiplierNop,
}

impl OptKind {
    /// All transforms, in application order.
    pub const ALL: [OptKind; 3] = [
        OptKind::IndexedLoad,
        OptKind::PopSplit,
        OptKind::MultiplierNop,
    ];

    /// Short name.
    pub fn name(self) -> &'static str {
        match self {
            OptKind::IndexedLoad => "OPT1 (indexed-load split)",
            OptKind::PopSplit => "OPT2 (pop split)",
            OptKind::MultiplierNop => "OPT3 (multiplier nop)",
        }
    }
}

/// Options for the optimizer.
#[derive(Debug, Clone)]
pub struct OptimizeOptions {
    /// Scratch register OPT1 may clobber (`None` disables OPT1).
    pub scratch_reg: Option<u8>,
    /// Transforms to consider.
    pub enabled: Vec<OptKind>,
    /// Inputs used for the ISS overhead measurement.
    pub iss_inputs: Vec<u16>,
    /// Instruction budget for the ISS runs.
    pub iss_max_instrs: u64,
}

impl Default for OptimizeOptions {
    fn default() -> OptimizeOptions {
        OptimizeOptions {
            scratch_reg: None,
            enabled: OptKind::ALL.to_vec(),
            iss_inputs: Vec::new(),
            iss_max_instrs: 2_000_000,
        }
    }
}

/// Report from [`optimize_program`].
#[derive(Debug, Clone)]
pub struct OptimizationReport {
    /// Peak power bound of the original program, milliwatts.
    pub original_peak_mw: f64,
    /// Peak power bound after the accepted transforms, milliwatts.
    pub optimized_peak_mw: f64,
    /// Peak-power reduction, percent.
    pub peak_reduction_pct: f64,
    /// Original / optimized dynamic range (peak − average), milliwatts.
    pub original_dynamic_range_mw: f64,
    /// See `original_dynamic_range_mw`.
    pub optimized_dynamic_range_mw: f64,
    /// Transforms that were accepted (reduced the bound).
    pub accepted: Vec<OptKind>,
    /// The optimized source (equals the input if nothing was accepted).
    pub optimized_source: String,
    /// Cycle-count increase measured on the ISS, percent.
    pub performance_degradation_pct: f64,
    /// Energy increase (average-power × runtime proxy), percent.
    pub energy_overhead_pct: f64,
}

/// Errors from the optimizer.
#[derive(Debug, Clone)]
pub enum OptimizeError {
    /// A rewrite produced unassemblable source (an optimizer bug).
    Assemble(AsmError),
    /// Analysis of a candidate failed.
    Analysis(AnalysisError),
    /// ISS execution of a candidate failed.
    Iss(xbound_msp430::iss::IssError),
}

impl std::fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptimizeError::Assemble(e) => write!(f, "rewritten source: {e}"),
            OptimizeError::Analysis(e) => write!(f, "analysis of candidate: {e}"),
            OptimizeError::Iss(e) => write!(f, "ISS run of candidate: {e}"),
        }
    }
}

impl std::error::Error for OptimizeError {}

fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    if let Some(i) = line.find(';') {
        end = end.min(i);
    }
    if let Some(i) = line.find("//") {
        end = end.min(i);
    }
    &line[..end]
}

/// Splits `label:` off a line; returns `(label_part, code_part)`.
fn split_label(line: &str) -> (&str, &str) {
    let code = strip_comment(line);
    if let Some(colon) = code.find(':') {
        let (l, rest) = code.split_at(colon + 1);
        (l, rest.trim())
    } else {
        ("", code.trim())
    }
}

/// Applies OPT2: `pop dst` → `mov @sp, dst` + `add #2, sp`.
///
/// `ret` (`pop pc`) is left untouched.
pub fn apply_pop_split(source: &str) -> String {
    let mut out = String::new();
    for line in source.lines() {
        let (label, code) = split_label(line);
        let lower = code.to_ascii_lowercase();
        let rewritten = if let Some(rest) = lower.strip_prefix("pop ") {
            let dst = rest.trim();
            if dst == "pc" || dst == "r0" {
                None
            } else {
                Some(format!("{label} mov @sp, {dst}\n    add #2, sp"))
            }
        } else if let Some(rest) = lower.strip_prefix("mov @sp+,") {
            let dst = rest.trim();
            if dst == "pc" || dst == "r0" {
                None
            } else {
                Some(format!("{label} mov @sp, {dst}\n    add #2, sp"))
            }
        } else {
            None
        };
        match rewritten {
            Some(r) => {
                out.push_str(&r);
                out.push('\n');
            }
            None => {
                out.push_str(line);
                out.push('\n');
            }
        }
    }
    out
}

/// Applies OPT3: inserts `nop` after every write to the multiplier OP2
/// register, separating multiplier and core activity.
pub fn apply_multiplier_nop(source: &str) -> String {
    let op2 = format!("&0x{:04x}", memmap::OP2);
    let mut out = String::new();
    for line in source.lines() {
        out.push_str(line);
        out.push('\n');
        let (_, code) = split_label(line);
        let lower = code.to_ascii_lowercase();
        if lower.starts_with("mov") && lower.contains(&op2) {
            out.push_str("    nop\n");
        }
    }
    out
}

/// Applies OPT1: `mov K(rN), dst` → compute the address in the scratch
/// register, then load register-indirect. Lines whose destination *is* the
/// scratch register are skipped.
pub fn apply_indexed_load_split(source: &str, scratch: u8) -> String {
    let sr = format!("r{scratch}");
    let mut out = String::new();
    for line in source.lines() {
        let (label, code) = split_label(line);
        let lower = code.to_ascii_lowercase();
        let mut rewritten = None;
        if let Some(rest) = lower.strip_prefix("mov ") {
            // Match `K(rN), dst` with numeric K.
            if let Some((src, dst)) = rest.split_once(',') {
                let src = src.trim();
                let dst = dst.trim();
                if let Some(open) = src.find('(') {
                    if src.ends_with(')') && !src.starts_with('&') {
                        let k = &src[..open];
                        let base = &src[open + 1..src.len() - 1];
                        let numeric = k
                            .strip_prefix('-')
                            .unwrap_or(k)
                            .chars()
                            .all(|c| c.is_ascii_alphanumeric())
                            && !k.is_empty();
                        if numeric && dst != sr && base != sr && dst != "pc" && dst != "r0" {
                            rewritten = Some(format!(
                                "{label} mov {base}, {sr}\n    add #{k}, {sr}\n    mov @{sr}, {dst}"
                            ));
                        }
                    }
                }
            }
        }
        match rewritten {
            Some(rw) => {
                out.push_str(&rw);
                out.push('\n');
            }
            None => {
                out.push_str(line);
                out.push('\n');
            }
        }
    }
    out
}

fn apply(kind: OptKind, source: &str, opts: &OptimizeOptions) -> Option<String> {
    match kind {
        OptKind::PopSplit => Some(apply_pop_split(source)),
        OptKind::MultiplierNop => Some(apply_multiplier_nop(source)),
        OptKind::IndexedLoad => opts
            .scratch_reg
            .map(|r| apply_indexed_load_split(source, r)),
    }
}

fn iss_cycles(program: &Program, inputs: &[u16], max: u64) -> Result<u64, OptimizeError> {
    let mut iss = Iss::new(program);
    iss.set_inputs(inputs);
    let out = iss.run(max).map_err(OptimizeError::Iss)?;
    Ok(out.cycles)
}

/// Runs the optimization loop of §5.1: apply each enabled transform,
/// re-analyze, and keep it only if the peak-power bound decreases.
///
/// # Errors
///
/// Returns [`OptimizeError`] if a rewritten source fails to assemble or a
/// candidate analysis fails.
pub fn optimize_program(
    system: &UlpSystem,
    source: &str,
    config: crate::ExploreConfig,
    energy_rounds: u64,
    opts: &OptimizeOptions,
) -> Result<OptimizationReport, OptimizeError> {
    let analyze = |src: &str| -> Result<(f64, f64, Program), OptimizeError> {
        let program = assemble(src).map_err(OptimizeError::Assemble)?;
        let analysis = CoAnalysis::new(system)
            .config(config)
            .energy_rounds(energy_rounds)
            .run(&program)
            .map_err(OptimizeError::Analysis)?;
        let peak = analysis.peak_power().peak_mw;
        // Dynamic range: peak minus average of the bound over the longest
        // path (approximated by the flattened trace mean).
        let mut sum = 0.0;
        let mut n = 0usize;
        for seg in analysis.peak_power().bound_mw.iter() {
            for &p in seg {
                sum += p;
                n += 1;
            }
        }
        let avg = if n > 0 { sum / n as f64 } else { 0.0 };
        Ok((peak, peak - avg, program))
    };

    let (orig_peak, orig_range, orig_prog) = analyze(source)?;
    let orig_cycles = iss_cycles(&orig_prog, &opts.iss_inputs, opts.iss_max_instrs)?;

    let mut best_src = source.to_string();
    let mut best_peak = orig_peak;
    let mut best_range = orig_range;
    let mut accepted = Vec::new();
    for kind in &opts.enabled {
        let Some(candidate) = apply(*kind, &best_src, opts) else {
            continue;
        };
        if candidate == best_src {
            continue; // transform did not match anything
        }
        let (peak, range, _prog) = analyze(&candidate)?;
        if peak < best_peak - 1e-12 {
            best_src = candidate;
            best_peak = peak;
            best_range = range;
            accepted.push(*kind);
        }
    }

    let opt_prog = assemble(&best_src).map_err(OptimizeError::Assemble)?;
    let opt_cycles = iss_cycles(&opt_prog, &opts.iss_inputs, opts.iss_max_instrs)?;
    let perf_pct = if orig_cycles > 0 {
        (opt_cycles as f64 - orig_cycles as f64) / orig_cycles as f64 * 100.0
    } else {
        0.0
    };
    // Energy proxy: average bound power × cycles.
    let orig_avg = orig_peak - orig_range;
    let opt_avg = best_peak - best_range;
    let orig_energy = orig_avg * orig_cycles as f64;
    let opt_energy = opt_avg * opt_cycles as f64;
    let energy_pct = if orig_energy > 0.0 {
        (opt_energy - orig_energy) / orig_energy * 100.0
    } else {
        0.0
    };

    Ok(OptimizationReport {
        original_peak_mw: orig_peak,
        optimized_peak_mw: best_peak,
        peak_reduction_pct: if orig_peak > 0.0 {
            (orig_peak - best_peak) / orig_peak * 100.0
        } else {
            0.0
        },
        original_dynamic_range_mw: orig_range,
        optimized_dynamic_range_mw: best_range,
        accepted,
        optimized_source: best_src,
        performance_degradation_pct: perf_pct,
        energy_overhead_pct: energy_pct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_split_rewrites_pop_but_not_ret() {
        let src = "main: pop r7\n ret\n pop pc\n";
        let out = apply_pop_split(src);
        assert!(out.contains("mov @sp, r7"));
        assert!(out.contains("add #2, sp"));
        assert!(out.contains("ret"));
        assert!(out.contains("pop pc"), "pop pc untouched");
    }

    #[test]
    fn multiplier_nop_inserted_after_op2() {
        let src = "mov r4, &0x0130\nmov r5, &0x0138\nmov &0x013a, r6\n";
        let out = apply_multiplier_nop(src);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[1].trim(), "mov r5, &0x0138");
        assert_eq!(lines[2].trim(), "nop");
    }

    #[test]
    fn indexed_load_split_uses_scratch() {
        let src = "loop: mov -6(r4), r15\nmov 2(r4), r11\nmov &0x0200, r5\n";
        let out = apply_indexed_load_split(src, 11);
        // First line rewritten; second untouched (dst is the scratch);
        // absolute load untouched.
        assert!(out.contains("mov r4, r11"));
        assert!(out.contains("add #-6, r11"));
        assert!(out.contains("mov @r11, r15"));
        assert!(out.contains("mov 2(r4), r11"));
        assert!(out.contains("mov &0x0200, r5"));
    }

    #[test]
    fn rewritten_sources_assemble() {
        let src = "main: mov #0x0a00, sp\n push r4\n pop r7\n mov 2(r4), r5\n mov r4, &0x0138\n mov &0x013a, r6\n jmp $\n";
        for out in [
            apply_pop_split(src),
            apply_multiplier_nop(src),
            apply_indexed_load_split(src, 11),
        ] {
            assemble(&out).unwrap_or_else(|e| panic!("{e}\n---\n{out}"));
        }
    }

    #[test]
    fn labels_preserved_by_rewrites() {
        let src = "top: pop r7\n jmp top\n";
        let out = apply_pop_split(src);
        assert!(out.contains("top:"));
        assemble(&out).unwrap();
    }
}
