//! Execution-subtree memoization for incremental re-analysis.
//!
//! Simulating one fork-free run is a *pure function* of its starting
//! [`MachineState`] (see the batching discussion in [`crate::activity`]):
//! the program image lives in the snapshot's memories and the simulator
//! applies no other persistent stimulus. A path's result can therefore be
//! reused whenever a later exploration — of the same program, or of an
//! *edited* one — reaches an equivalent start state under equivalent
//! exploration knobs.
//!
//! # Key material
//!
//! An entry is addressed by the FNV-1a hash of
//!
//! * the **context hash** ([`context_hash`]): every result-relevant
//!   [`ExploreConfig`] knob (`max_segment_cycles`, `max_total_cycles`,
//!   `widen_threshold`, `reset_cycles`), the cell-library identifier, the
//!   operating clock, and the codec version. `threads` and `lanes` are
//!   deliberately **excluded** — path simulation is bit-identical at any
//!   `(threads, lanes)` setting, so changing them must still hit;
//! * the **remaining-budget position** (`pre_frames`): the per-segment
//!   cycle budget check reads `pre_frames + frames`, so the same state
//!   can truncate differently at a different budget position;
//! * the full **flip-flop vector** of the start state.
//!
//! # Read-footprint verification
//!
//! The memory image is *not* part of the key: hashing it would make every
//! start state of an edited program a guaranteed miss even though the
//! edit is invisible to most paths. Instead each entry stores the path's
//! **read footprint** — every `(region, offset, value)` memory word the
//! original simulation consulted before writing it itself (instruction
//! fetches included). A candidate hit must match the flip-flop vector
//! exactly and every footprint word. A one-instruction edit therefore
//! invalidates exactly the paths whose execution cone fetches the edited
//! word; everything else replays from the memo and is stitched into the
//! tree.
//!
//! # Replay
//!
//! An entry stores the path's settled frames (delta-coded against the
//! previous cycle) and its ending: halt, or a fork with both directions'
//! branch-cycle frame, after-state flip-flops, and the after-state's
//! memory as a **delta over the start state's memory** (every word the
//! path wrote, whether or not the write changed it). Replaying over a new
//! start state applies that delta to the *new* memories, so unread,
//! unwritten words — such as an edited instruction the path never fetches
//! — flow through to the forked children, which then miss and re-simulate
//! if they do read it.
//!
//! The driver's commit loop (subsumption, widening, segment numbering,
//! statistics) always re-runs on replayed results, so a warm
//! [`crate::Analysis`] is **byte-identical** to a cold one by
//! construction.
//!
//! # Persistence
//!
//! With a cache directory configured, every entry is mirrored to
//! `memo-<key>.json` — the same canonical [`crate::jsonout`] encoding and
//! the same write-then-rename discipline ([`crate::outdirs::write_atomic`])
//! as the service's bound cache, and by default the same
//! `XBOUND_CACHE_DIR`. Disk entries are loaded lazily on a memory miss
//! and re-verified in full before use; a malformed or stale file is
//! simply a miss.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use xbound_logic::{Frame, Lv, XWord};
use xbound_power::PowerTrace;
use xbound_sim::MachineState;

use crate::activity::ExploreConfig;
use crate::jsonin::Json;
use crate::jsonout::JsonWriter;
use xbound_obs::{metrics, trace};

/// Registry mirrors of the memo's hit/miss telemetry. Unlike the
/// explorer (which mirrors once per run), these increment at the lookup
/// sites — a lookup already pays a map lock, so one relaxed add is
/// noise — which keeps the counters live for a shared daemon memo.
struct MemoMetrics {
    hits: metrics::Counter,
    misses: metrics::Counter,
    power_hits: metrics::Counter,
    power_misses: metrics::Counter,
}

fn memo_metrics() -> &'static MemoMetrics {
    static M: std::sync::OnceLock<MemoMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| MemoMetrics {
        hits: metrics::counter("xbound_memo_hits_total"),
        misses: metrics::counter("xbound_memo_misses_total"),
        power_hits: metrics::counter("xbound_memo_power_hits_total"),
        power_misses: metrics::counter("xbound_memo_power_misses_total"),
    })
}

/// Bumped whenever the on-disk entry layout or the key material changes;
/// folded into [`context_hash`] so stale files can never verify.
const CODEC_VERSION: u64 = 1;

/// Document marker of a persisted entry.
const DOC_KIND: &str = "xbound-subtree-memo";

/// Default in-memory budget (bytes of retained frames/state) when no
/// explicit capacity is given: generous enough to keep a whole suite
/// exploration resident, small enough not to matter on a CI runner.
const DEFAULT_BUDGET_BYTES: usize = 256 << 20;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// Incremental FNV-1a over little-endian byte material.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
}

/// The context half of the memo key: every knob outside the machine
/// state that can change what a path simulates to. `threads` and `lanes`
/// are excluded on purpose — results are bit-identical at any setting,
/// and re-analysis after a parallelism change must stay warm.
pub fn context_hash(config: &ExploreConfig, library: &str, clock_hz: f64) -> u64 {
    let mut h = Fnv::new();
    h.u64(CODEC_VERSION);
    h.u64(config.max_segment_cycles);
    h.u64(config.max_total_cycles);
    h.u64(config.widen_threshold as u64);
    h.u64(config.reset_cycles as u64);
    h.u64(library.len() as u64);
    h.bytes(library.as_bytes());
    h.u64(clock_hz.to_bits());
    h.0
}

/// The full memo key: context, budget position, start flip-flop vector.
fn key_hash(ctx: u64, pre_frames: u64, ffs: &[Lv]) -> u64 {
    let mut h = Fnv::new();
    h.u64(ctx);
    h.u64(pre_frames);
    h.u64(ffs.len() as u64);
    let mut packed = 0u64;
    let mut n = 0u32;
    for &v in ffs {
        packed |= (v.code() as u64) << (2 * n);
        n += 1;
        if n == 32 {
            h.u64(packed);
            packed = 0;
            n = 0;
        }
    }
    if n != 0 {
        h.u64(packed);
    }
    h.0
}

/// One fork direction as handed to [`SubtreeMemo::record`]: the forced
/// branch-cycle frame, the committed after-state, and every memory word
/// the path wrote up to this direction's end (the after-state delta).
pub struct RecordedDir<'a> {
    /// The direction's re-simulated branch-cycle frame.
    pub first_frame: &'a Frame,
    /// Machine state after committing the branch cycle.
    pub after: &'a MachineState,
    /// `(region, offset)` of every word written on the path including
    /// this direction's branch cycle — the complete set of words where
    /// `after`'s memory may differ from the start state's.
    pub written: &'a [(u16, u32)],
}

/// How a recorded path ended. Only halting and forking paths are
/// memoizable — truncation depends on the global budget, and errors must
/// re-diagnose.
pub enum PathOutcome<'a> {
    /// Reached the final self-loop.
    Halt,
    /// Input-dependent branch; both directions pre-simulated.
    Fork {
        /// PC of the branch instruction.
        branch_pc: u16,
        /// Direction data, in `[taken, not-taken]` order.
        dirs: Vec<RecordedDir<'a>>,
    },
}

/// A memo hit, reconstructed for the caller's start state.
pub struct ReplayedPath {
    /// The path's settled frames, bit-identical to re-simulation.
    pub frames: Vec<Frame>,
    /// How the path ended.
    pub end: ReplayedEnd,
}

/// The ending of a [`ReplayedPath`].
pub enum ReplayedEnd {
    /// Reached the final self-loop.
    Halt,
    /// Fork: per direction, the branch-cycle frame and the after-state
    /// (the recorded write delta applied over the *caller's* memories).
    Fork {
        /// PC of the branch instruction.
        branch_pc: u16,
        /// `[taken, not-taken]` direction states.
        dirs: Vec<(Frame, MachineState)>,
    },
}

/// Stored fork-direction data (delta-coded).
struct StoredDir {
    first_frame: Frame,
    ffs_after: Vec<Lv>,
    /// Sorted `(region, offset, value)` for every written word.
    mem_delta: Vec<(u16, u32, XWord)>,
}

enum StoredEnd {
    Halt,
    Fork {
        branch_pc: u16,
        dirs: Vec<StoredDir>,
    },
}

/// One memoized path. Frames are delta-coded against the previous cycle
/// (`first` in full, then per-cycle `(net, value)` changes), which keeps
/// resident memory proportional to switching activity instead of
/// `frames × design size`.
struct Entry {
    ctx: u64,
    pre_frames: u64,
    ffs: Vec<Lv>,
    /// Sorted read footprint: `(region, offset, value-as-read)`.
    reads: Vec<(u16, u32, XWord)>,
    frame_count: usize,
    first: Option<Frame>,
    deltas: Vec<Vec<(u32, u8)>>,
    end: StoredEnd,
    /// Approximate resident size, for the byte-budget LRU.
    bytes: usize,
    /// LRU stamp (monotonic use counter).
    stamp: u64,
}

impl Entry {
    fn approx_bytes(&self) -> usize {
        let frame_bytes = |f: &Frame| f.len() / 4 + 48;
        let mut n = 128;
        n += self.ffs.len();
        n += self.reads.len() * 12;
        n += self.first.as_ref().map_or(0, frame_bytes);
        n += self.deltas.iter().map(|d| d.len() * 6 + 32).sum::<usize>();
        if let StoredEnd::Fork { dirs, .. } = &self.end {
            for d in dirs {
                n += frame_bytes(&d.first_frame) + d.ffs_after.len() + d.mem_delta.len() * 12;
            }
        }
        n
    }

    /// Reconstructs the frame sequence (exact, by delta application).
    fn frames(&self) -> Vec<Frame> {
        let mut out = Vec::with_capacity(self.frame_count);
        if let Some(first) = &self.first {
            let mut cur = first.clone();
            out.push(cur.clone());
            for d in &self.deltas {
                for &(i, code) in d {
                    cur.set(i as usize, Lv::from_code(code));
                }
                out.push(cur.clone());
            }
        }
        out
    }

    /// Full verification of a candidate hit: context, budget position,
    /// exact flip-flop vector, every footprint word, and delta bounds.
    fn verify(&self, ctx: u64, pre_frames: u64, start: &MachineState) -> bool {
        if self.ctx != ctx || self.pre_frames != pre_frames || self.ffs.as_slice() != start.ffs() {
            return false;
        }
        let mems = start.mems();
        let word = |r: u16, o: u32| {
            mems.get(r as usize)
                .and_then(|m| m.get(o as usize))
                .copied()
        };
        if !self.reads.iter().all(|&(r, o, v)| word(r, o) == Some(v)) {
            return false;
        }
        if let StoredEnd::Fork { dirs, .. } = &self.end {
            for d in dirs {
                if !d.mem_delta.iter().all(|&(r, o, _)| word(r, o).is_some()) {
                    return false;
                }
            }
        }
        true
    }

    /// Builds the caller-facing replay over `start`'s memories.
    fn replay(&self, start: &MachineState) -> ReplayedPath {
        let frames = self.frames();
        let cycle_after = start.cycle() + frames.len() as u64 + 1;
        let end = match &self.end {
            StoredEnd::Halt => ReplayedEnd::Halt,
            StoredEnd::Fork { branch_pc, dirs } => ReplayedEnd::Fork {
                branch_pc: *branch_pc,
                dirs: dirs
                    .iter()
                    .map(|d| {
                        let mut mems: Vec<Vec<XWord>> = start.mems().to_vec();
                        for &(r, o, v) in &d.mem_delta {
                            mems[r as usize][o as usize] = v;
                        }
                        let after =
                            MachineState::from_parts(d.ffs_after.clone(), mems, cycle_after);
                        (d.first_frame.clone(), after)
                    })
                    .collect(),
            },
        };
        ReplayedPath { frames, end }
    }
}

/// Counter snapshot for telemetry (service `stats`, driver summaries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    /// Verified lookups served from the memo (memory or disk).
    pub hits: u64,
    /// Lookups that had to simulate.
    pub misses: u64,
    /// Segments stitched from replays: the replayed segment itself plus
    /// one per fork direction it seeded.
    pub stitched_segments: u64,
    /// Segment-power compositions served from the cache (Algorithm 2
    /// traces replayed instead of recomputed).
    pub power_hits: u64,
    /// Segment-power compositions that had to recompute.
    pub power_misses: u64,
}

/// A concurrent, byte-budgeted, optionally disk-backed store of memoized
/// execution-subtree paths. Shared across analyses (and across service
/// worker threads) behind an [`Arc`].
pub struct SubtreeMemo {
    inner: Mutex<HashMap<u64, Entry>>,
    dir: Option<PathBuf>,
    budget_bytes: usize,
    resident_bytes: AtomicU64,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    stitched: AtomicU64,
    power: SegmentPowerCache,
}

impl std::fmt::Debug for SubtreeMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubtreeMemo")
            .field("dir", &self.dir)
            .field("budget_bytes", &self.budget_bytes)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl SubtreeMemo {
    /// A store with an optional persistence directory and an in-memory
    /// byte budget (least-recently-used entries are evicted past it; disk
    /// mirrors are never evicted).
    pub fn new(dir: Option<PathBuf>, budget_bytes: usize) -> SubtreeMemo {
        SubtreeMemo {
            inner: Mutex::new(HashMap::new()),
            dir,
            budget_bytes,
            resident_bytes: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stitched: AtomicU64::new(0),
            power: SegmentPowerCache::new(budget_bytes),
        }
    }

    /// An in-memory-only store with the default budget.
    pub fn in_memory() -> SubtreeMemo {
        SubtreeMemo::new(None, DEFAULT_BUDGET_BYTES)
    }

    /// A disk-backed store with the default budget.
    pub fn with_dir(dir: PathBuf) -> SubtreeMemo {
        SubtreeMemo::new(Some(dir), DEFAULT_BUDGET_BYTES)
    }

    /// Current counter values.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stitched_segments: self.stitched.load(Ordering::Relaxed),
            power_hits: self.power.hits.load(Ordering::Relaxed),
            power_misses: self.power.misses.load(Ordering::Relaxed),
        }
    }

    /// The segment-power composition cache riding along with this store
    /// (in-memory only; it shares the store's byte budget semantics but
    /// not its persistence — traces are recomputed per process).
    pub fn power(&self) -> &SegmentPowerCache {
        &self.power
    }

    /// Number of resident (in-memory) entries.
    pub fn entries(&self) -> usize {
        self.inner.lock().expect("memo lock").len()
    }

    /// Persistence directory, when disk-backed.
    pub fn dir(&self) -> Option<&PathBuf> {
        self.dir.as_ref()
    }

    /// Looks a path up by `(ctx, pre_frames, start)`. A verified entry is
    /// replayed over `start`'s memories; anything else (absent key, hash
    /// collision, footprint mismatch, stale disk file) is a miss.
    pub fn lookup(&self, ctx: u64, pre_frames: u64, start: &MachineState) -> Option<ReplayedPath> {
        let _span = trace::span("memo_lookup");
        let key = key_hash(ctx, pre_frames, start.ffs());
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        {
            let mut map = self.inner.lock().expect("memo lock");
            if let Some(e) = map.get_mut(&key) {
                if e.verify(ctx, pre_frames, start) {
                    e.stamp = stamp;
                    let replayed = e.replay(start);
                    self.count_hit(&e.end);
                    return Some(replayed);
                }
                self.count_miss();
                return None;
            }
        }
        // Memory miss: try the disk mirror (written by an earlier process
        // or evicted earlier in this one), verify in full, then adopt.
        if let Some(e) = self.load_from_disk(key, ctx, pre_frames, start) {
            let replayed = e.replay(start);
            self.count_hit(&e.end);
            self.insert(key, e);
            return Some(replayed);
        }
        self.count_miss();
        None
    }

    fn count_hit(&self, end: &StoredEnd) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        memo_metrics().hits.inc();
        let stitched = match end {
            StoredEnd::Halt => 1,
            StoredEnd::Fork { dirs, .. } => 1 + dirs.len() as u64,
        };
        self.stitched.fetch_add(stitched, Ordering::Relaxed);
    }

    fn count_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        memo_metrics().misses.inc();
    }

    /// Records one committed path. `reads` is the path's read footprint;
    /// `frames` its settled frames (for forks, the branch-cycle frame
    /// already popped). Replayed results must not be re-recorded (the
    /// driver only records paths that carry a footprint).
    pub fn record(
        &self,
        ctx: u64,
        pre_frames: u64,
        start: &MachineState,
        frames: &[Frame],
        reads: &[(u16, u32, XWord)],
        outcome: PathOutcome<'_>,
    ) {
        let key = key_hash(ctx, pre_frames, start.ffs());
        let mut sorted_reads = reads.to_vec();
        sorted_reads.sort_unstable_by_key(|&(r, o, _)| (r, o));
        let end = match outcome {
            PathOutcome::Halt => StoredEnd::Halt,
            PathOutcome::Fork { branch_pc, dirs } => StoredEnd::Fork {
                branch_pc,
                dirs: dirs
                    .iter()
                    .map(|d| {
                        let mems = d.after.mems();
                        let mut delta: Vec<(u16, u32, XWord)> = d
                            .written
                            .iter()
                            .map(|&(r, o)| (r, o, mems[r as usize][o as usize]))
                            .collect();
                        delta.sort_unstable_by_key(|&(r, o, _)| (r, o));
                        StoredDir {
                            first_frame: d.first_frame.clone(),
                            ffs_after: d.after.ffs().to_vec(),
                            mem_delta: delta,
                        }
                    })
                    .collect(),
            },
        };
        let (first, deltas) = delta_code(frames);
        let mut entry = Entry {
            ctx,
            pre_frames,
            ffs: start.ffs().to_vec(),
            reads: sorted_reads,
            frame_count: frames.len(),
            first,
            deltas,
            end,
            bytes: 0,
            stamp: self.clock.fetch_add(1, Ordering::Relaxed),
        };
        entry.bytes = entry.approx_bytes();
        if let Some(dir) = &self.dir {
            let doc = encode(key, &entry);
            let path = dir.join(format!("memo-{key:016x}.json"));
            // Persistence is best-effort: a full disk must not fail the
            // analysis that produced the entry.
            let _ = crate::outdirs::write_atomic(&path, doc.as_bytes());
        }
        self.insert(key, entry);
    }

    fn insert(&self, key: u64, entry: Entry) {
        let mut map = self.inner.lock().expect("memo lock");
        let added = entry.bytes as u64;
        let removed = map.insert(key, entry).map_or(0, |old| old.bytes as u64);
        let mut resident =
            self.resident_bytes.fetch_add(added, Ordering::Relaxed) + added - removed;
        self.resident_bytes.fetch_sub(removed, Ordering::Relaxed);
        // Byte-budget LRU: evict stalest entries until back under budget.
        while resident > self.budget_bytes as u64 && map.len() > 1 {
            let oldest = map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(&k, _)| k)
                .expect("non-empty map");
            if oldest == key {
                break; // never evict the entry just inserted
            }
            let evicted = map.remove(&oldest).expect("present").bytes as u64;
            self.resident_bytes.fetch_sub(evicted, Ordering::Relaxed);
            resident -= evicted;
        }
    }

    fn load_from_disk(
        &self,
        key: u64,
        ctx: u64,
        pre_frames: u64,
        start: &MachineState,
    ) -> Option<Entry> {
        let dir = self.dir.as_ref()?;
        let path = dir.join(format!("memo-{key:016x}.json"));
        let text = std::fs::read_to_string(path).ok()?;
        let mut entry = decode(&text)?;
        if key_hash(entry.ctx, entry.pre_frames, &entry.ffs) != key
            || !entry.verify(ctx, pre_frames, start)
        {
            return None;
        }
        entry.stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        Some(entry)
    }
}

// --- segment-power composition cache ----------------------------------

/// One cached segment-power composition: the even/odd parity traces of
/// Algorithm 2 for one `(context, start-cycle parity, boundary frame,
/// adjusted frames)` key, stored delta-coded for exact verification.
struct PowerEntry {
    ctx: u64,
    odd_start: bool,
    boundary: Option<Frame>,
    first: Option<Frame>,
    deltas: Vec<Vec<(u32, u8)>>,
    even: PowerTrace,
    odd: PowerTrace,
    bytes: usize,
    stamp: u64,
}

impl PowerEntry {
    fn approx_bytes(&self) -> usize {
        let frame_bytes = |f: &Frame| f.len() / 4 + 48;
        let mut n = 128;
        n += self.boundary.as_ref().map_or(0, frame_bytes);
        n += self.first.as_ref().map_or(0, frame_bytes);
        n += self.deltas.iter().map(|d| d.len() * 6 + 32).sum::<usize>();
        n += (self.even.approx_bytes() + self.odd.approx_bytes()) as usize;
        n
    }
}

/// In-memory cache of per-segment Algorithm 2 results, keyed by exactly
/// what that computation reads: the analysis context (library, clock,
/// stability knob), the segment's start-cycle parity, the parent's
/// adjusted last frame, and the segment's adjusted frames. Hits are
/// verified by full equality of that key material (delta-coded, the same
/// canonical form the subtree memo persists), so a replayed trace pair is
/// bit-identical to a recomputation by construction.
///
/// Unlike the subtree memo this cache is never persisted: traces are
/// process-local and rebuild on first (cold) use.
pub struct SegmentPowerCache {
    inner: Mutex<HashMap<u64, PowerEntry>>,
    budget_bytes: usize,
    resident_bytes: AtomicU64,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for SegmentPowerCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentPowerCache")
            .field("budget_bytes", &self.budget_bytes)
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

fn power_key(ctx: u64, odd_start: bool, boundary: Option<&Frame>, frames: &[Frame]) -> u64 {
    let mut h = Fnv::new();
    h.u64(ctx);
    h.u64(u64::from(odd_start));
    h.u64(boundary.map_or(u64::MAX, Frame::content_hash));
    h.u64(frames.len() as u64);
    for f in frames {
        h.u64(f.content_hash());
    }
    h.0
}

impl SegmentPowerCache {
    fn new(budget_bytes: usize) -> SegmentPowerCache {
        SegmentPowerCache {
            inner: Mutex::new(HashMap::new()),
            budget_bytes,
            resident_bytes: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A standalone cache with its own byte budget, detached from any
    /// subtree memo — the per-corner composition cache of an
    /// operating-point sweep ([`crate::sweep`]), where each corner's
    /// context would otherwise thrash one shared LRU.
    pub fn with_budget(budget_bytes: usize) -> SegmentPowerCache {
        SegmentPowerCache::new(budget_bytes)
    }

    /// Traces replayed from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of resident entries.
    pub fn entries(&self) -> usize {
        self.inner.lock().expect("power cache lock").len()
    }

    /// Looks one segment's parity-trace pair up. A hit requires the whole
    /// key material to verify by equality; anything else is a miss.
    pub fn lookup(
        &self,
        ctx: u64,
        odd_start: bool,
        boundary: Option<&Frame>,
        frames: &[Frame],
    ) -> Option<(PowerTrace, PowerTrace)> {
        let key = power_key(ctx, odd_start, boundary, frames);
        let (first, deltas) = delta_code(frames);
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut map = self.inner.lock().expect("power cache lock");
        if let Some(e) = map.get_mut(&key) {
            if e.ctx == ctx
                && e.odd_start == odd_start
                && e.boundary.as_ref() == boundary
                && e.first == first
                && e.deltas == deltas
            {
                e.stamp = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                memo_metrics().power_hits.inc();
                return Some((e.even.clone(), e.odd.clone()));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        memo_metrics().power_misses.inc();
        None
    }

    /// Records one segment's computed parity-trace pair.
    pub fn record(
        &self,
        ctx: u64,
        odd_start: bool,
        boundary: Option<&Frame>,
        frames: &[Frame],
        even: &PowerTrace,
        odd: &PowerTrace,
    ) {
        let key = power_key(ctx, odd_start, boundary, frames);
        let (first, deltas) = delta_code(frames);
        let mut entry = PowerEntry {
            ctx,
            odd_start,
            boundary: boundary.cloned(),
            first,
            deltas,
            even: even.clone(),
            odd: odd.clone(),
            bytes: 0,
            stamp: self.clock.fetch_add(1, Ordering::Relaxed),
        };
        entry.bytes = entry.approx_bytes();

        let mut map = self.inner.lock().expect("power cache lock");
        let added = entry.bytes as u64;
        let removed = map.insert(key, entry).map_or(0, |old| old.bytes as u64);
        let mut resident =
            self.resident_bytes.fetch_add(added, Ordering::Relaxed) + added - removed;
        self.resident_bytes.fetch_sub(removed, Ordering::Relaxed);
        while resident > self.budget_bytes as u64 && map.len() > 1 {
            let oldest = map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(&k, _)| k)
                .expect("non-empty map");
            if oldest == key {
                break; // never evict the entry just inserted
            }
            let evicted = map.remove(&oldest).expect("present").bytes as u64;
            self.resident_bytes.fetch_sub(evicted, Ordering::Relaxed);
            resident -= evicted;
        }
    }
}

/// Splits a frame sequence into `first` plus per-cycle `(net, code)`
/// deltas.
fn delta_code(frames: &[Frame]) -> (Option<Frame>, Vec<Vec<(u32, u8)>>) {
    let Some(first) = frames.first() else {
        return (None, Vec::new());
    };
    let deltas = frames
        .windows(2)
        .map(|w| {
            let mut d = Vec::new();
            w[1].for_each_diff(&w[0], |i| d.push((i as u32, w[1].get(i).code())));
            d
        })
        .collect();
    (Some(first.clone()), deltas)
}

// --- resolution from the environment ---------------------------------

/// `true` when `XBOUND_MEMO` explicitly disables memoization.
pub fn disabled_by_env() -> bool {
    matches!(
        std::env::var("XBOUND_MEMO").as_deref().map(str::trim),
        Ok("0") | Ok("off") | Ok("false") | Ok("no")
    )
}

/// Resolves a memo store for a CLI driver from `XBOUND_MEMO` and an
/// `--incremental`-style flag:
///
/// * `XBOUND_MEMO=0|off|false|no` — disabled, whatever the flag says;
/// * `XBOUND_MEMO=mem|memory` — enabled, in-memory only;
/// * `XBOUND_MEMO=1|on|true|yes` — enabled, persisted under the shared
///   cache directory ([`crate::outdirs::cache_dir`]);
/// * unset — follows `default_on` (drivers pass their `--incremental`
///   flag; the service passes `true`), persisted when enabled.
pub fn from_env(default_on: bool) -> Option<Arc<SubtreeMemo>> {
    let var = std::env::var("XBOUND_MEMO").ok();
    let choice = var.as_deref().map(str::trim).unwrap_or("");
    let (on, disk) = match choice {
        "0" | "off" | "false" | "no" => (false, false),
        "mem" | "memory" => (true, false),
        "1" | "on" | "true" | "yes" => (true, true),
        _ => (default_on, true),
    };
    if !on {
        return None;
    }
    let dir = if disk {
        // An unusable cache directory degrades to in-memory memoization.
        crate::outdirs::cache_dir(None).ok()
    } else {
        None
    };
    Some(Arc::new(SubtreeMemo::new(dir, DEFAULT_BUDGET_BYTES)))
}

// --- canonical JSON codec ---------------------------------------------

fn lv_string(ffs: &[Lv]) -> String {
    ffs.iter().map(|v| v.to_char()).collect()
}

fn frame_string(f: &Frame) -> String {
    (0..f.len()).map(|i| f.get(i).to_char()).collect()
}

fn encode(key: u64, e: &Entry) -> String {
    let mut w = JsonWriter::compact();
    w.begin_object();
    w.field_str("kind", DOC_KIND);
    w.field_u64("version", CODEC_VERSION);
    w.field_str("key", &format!("{key:016x}"));
    w.field_str("ctx", &format!("{:016x}", e.ctx));
    w.field_u64("pre_frames", e.pre_frames);
    w.field_str("ffs", &lv_string(&e.ffs));
    w.key("reads");
    w.begin_array();
    for &(r, o, v) in &e.reads {
        w.u64_val(r as u64);
        w.u64_val(o as u64);
        w.u64_val(v.val_plane() as u64);
        w.u64_val(v.unk_plane() as u64);
    }
    w.end_array();
    w.key("frames");
    w.begin_array();
    if let Some(first) = &e.first {
        w.str_val(&frame_string(first));
        for d in &e.deltas {
            w.begin_array();
            for &(i, code) in d {
                w.u64_val((i as u64) * 4 + code as u64);
            }
            w.end_array();
        }
    }
    w.end_array();
    w.key("end");
    w.begin_object();
    match &e.end {
        StoredEnd::Halt => w.field_str("kind", "halt"),
        StoredEnd::Fork { branch_pc, dirs } => {
            w.field_str("kind", "fork");
            w.field_u64("branch_pc", *branch_pc as u64);
            w.key("dirs");
            w.begin_array();
            for d in dirs {
                w.begin_object();
                w.field_str("first", &frame_string(&d.first_frame));
                w.field_str("ffs", &lv_string(&d.ffs_after));
                w.key("delta");
                w.begin_array();
                for &(r, o, v) in &d.mem_delta {
                    w.u64_val(r as u64);
                    w.u64_val(o as u64);
                    w.u64_val(v.val_plane() as u64);
                    w.u64_val(v.unk_plane() as u64);
                }
                w.end_array();
                w.end_object();
            }
            w.end_array();
        }
    }
    w.end_object();
    w.end_object();
    w.finish()
}

fn lv_vec(s: &str) -> Option<Vec<Lv>> {
    s.chars().map(Lv::from_char).collect()
}

fn frame_from_string(s: &str) -> Option<Frame> {
    let mut f = Frame::new(s.chars().count());
    for (i, c) in s.chars().enumerate() {
        f.set(i, Lv::from_char(c)?);
    }
    Some(f)
}

/// Decodes a flattened `[region, offset, val_plane, unk_plane, ...]`
/// word list.
fn word_list(v: &Json) -> Option<Vec<(u16, u32, XWord)>> {
    let items = v.as_arr()?;
    if items.len() % 4 != 0 {
        return None;
    }
    items
        .chunks(4)
        .map(|c| {
            let r = u16::try_from(c[0].as_u64()?).ok()?;
            let o = u32::try_from(c[1].as_u64()?).ok()?;
            let val = u16::try_from(c[2].as_u64()?).ok()?;
            let unk = u16::try_from(c[3].as_u64()?).ok()?;
            Some((r, o, XWord::from_planes(val, unk)))
        })
        .collect()
}

fn decode(text: &str) -> Option<Entry> {
    let v = Json::parse(text).ok()?;
    if v.get("kind").and_then(Json::as_str) != Some(DOC_KIND)
        || v.get("version").and_then(Json::as_u64) != Some(CODEC_VERSION)
    {
        return None;
    }
    let hex = |field: &str| u64::from_str_radix(v.get(field)?.as_str()?, 16).ok();
    let ctx = hex("ctx")?;
    let pre_frames = v.get("pre_frames").and_then(Json::as_u64)?;
    let ffs = lv_vec(v.get("ffs")?.as_str()?)?;
    let reads = word_list(v.get("reads")?)?;
    let frame_items = v.get("frames")?.as_arr()?;
    let (first, deltas) = match frame_items.split_first() {
        None => (None, Vec::new()),
        Some((head, rest)) => {
            let first = frame_from_string(head.as_str()?)?;
            let nets = first.len() as u64;
            let deltas: Option<Vec<Vec<(u32, u8)>>> = rest
                .iter()
                .map(|d| {
                    d.as_arr()?
                        .iter()
                        .map(|n| {
                            let n = n.as_u64()?;
                            let (i, code) = (n / 4, (n % 4) as u8);
                            (i < nets && code <= 2).then_some((i as u32, code))
                        })
                        .collect()
                })
                .collect();
            (Some(first), deltas?)
        }
    };
    let frame_count = if first.is_some() { 1 + deltas.len() } else { 0 };
    let endv = v.get("end")?;
    let end = match endv.get("kind").and_then(Json::as_str)? {
        "halt" => StoredEnd::Halt,
        "fork" => {
            let branch_pc = u16::try_from(endv.get("branch_pc").and_then(Json::as_u64)?).ok()?;
            let dirs: Option<Vec<StoredDir>> = endv
                .get("dirs")?
                .as_arr()?
                .iter()
                .map(|d| {
                    Some(StoredDir {
                        first_frame: frame_from_string(d.get("first")?.as_str()?)?,
                        ffs_after: lv_vec(d.get("ffs")?.as_str()?)?,
                        mem_delta: word_list(d.get("delta")?)?,
                    })
                })
                .collect();
            StoredEnd::Fork {
                branch_pc,
                dirs: dirs?,
            }
        }
        _ => return None,
    };
    let mut entry = Entry {
        ctx,
        pre_frames,
        ffs,
        reads,
        frame_count,
        first,
        deltas,
        end,
        bytes: 0,
        stamp: 0,
    };
    entry.bytes = entry.approx_bytes();
    Some(entry)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(ffs: &[Lv], mems: Vec<Vec<XWord>>, cycle: u64) -> MachineState {
        MachineState::from_parts(ffs.to_vec(), mems, cycle)
    }

    fn small_frame(bits: &[Lv]) -> Frame {
        let mut f = Frame::new(bits.len());
        for (i, &v) in bits.iter().enumerate() {
            f.set(i, v);
        }
        f
    }

    fn demo_mems() -> Vec<Vec<XWord>> {
        vec![(0..8).map(XWord::from_u16).collect(), vec![XWord::ALL_X; 4]]
    }

    #[test]
    fn halt_path_round_trips_and_footprint_guards() {
        let memo = SubtreeMemo::in_memory();
        let ctx = 7;
        let start = state(&[Lv::Zero, Lv::One, Lv::X], demo_mems(), 10);
        let frames = vec![
            small_frame(&[Lv::Zero, Lv::Zero, Lv::One, Lv::X]),
            small_frame(&[Lv::One, Lv::Zero, Lv::One, Lv::X]),
            small_frame(&[Lv::One, Lv::X, Lv::Zero, Lv::Zero]),
        ];
        let reads = [(0u16, 3u32, XWord::from_u16(3))];
        memo.record(ctx, 1, &start, &frames, &reads, PathOutcome::Halt);

        let hit = memo.lookup(ctx, 1, &start).expect("same state hits");
        assert_eq!(hit.frames, frames);
        assert!(matches!(hit.end, ReplayedEnd::Halt));

        // An edit to a word the path read must miss ...
        let mut edited = demo_mems();
        edited[0][3] = XWord::from_u16(0x4242);
        assert!(memo
            .lookup(ctx, 1, &state(&[Lv::Zero, Lv::One, Lv::X], edited, 10))
            .is_none());
        // ... an edit elsewhere must still hit.
        let mut elsewhere = demo_mems();
        elsewhere[0][7] = XWord::from_u16(0x4242);
        assert!(memo
            .lookup(ctx, 1, &state(&[Lv::Zero, Lv::One, Lv::X], elsewhere, 10))
            .is_some());
        // Different ffs, pre_frames, or context must miss.
        assert!(memo
            .lookup(
                ctx,
                1,
                &state(&[Lv::Zero, Lv::One, Lv::One], demo_mems(), 10)
            )
            .is_none());
        assert!(memo.lookup(ctx, 0, &start).is_none());
        assert!(memo.lookup(ctx + 1, 1, &start).is_none());

        let s = memo.stats();
        assert_eq!((s.hits, s.misses), (2, 4));
    }

    #[test]
    fn fork_replay_applies_write_delta_over_new_memories() {
        let memo = SubtreeMemo::in_memory();
        let start = state(&[Lv::Zero], demo_mems(), 0);
        let frames = vec![small_frame(&[Lv::Zero, Lv::One])];
        // The path wrote RAM word (1, 2); direction states differ there.
        let mut after_mems = demo_mems();
        after_mems[1][2] = XWord::from_u16(0xAAAA);
        let after_taken = state(&[Lv::One], after_mems.clone(), 2);
        after_mems[1][2] = XWord::from_u16(0x5555);
        let after_not = state(&[Lv::X], after_mems, 2);
        let first = small_frame(&[Lv::One, Lv::One]);
        let written = [(1u16, 2u32)];
        memo.record(
            9,
            0,
            &start,
            &frames,
            &[],
            PathOutcome::Fork {
                branch_pc: 0xF00C,
                dirs: vec![
                    RecordedDir {
                        first_frame: &first,
                        after: &after_taken,
                        written: &written,
                    },
                    RecordedDir {
                        first_frame: &first,
                        after: &after_not,
                        written: &written,
                    },
                ],
            },
        );

        // Replay over *edited* memories: the unread, unwritten edit must
        // flow into both direction states; the written word must come
        // from the recorded delta.
        let mut edited = demo_mems();
        edited[0][5] = XWord::from_u16(0xBEEF);
        let hit = memo
            .lookup(9, 0, &state(&[Lv::Zero], edited, 0))
            .expect("footprint is empty — any memory hits");
        let ReplayedEnd::Fork { branch_pc, dirs } = hit.end else {
            panic!("expected fork")
        };
        assert_eq!(branch_pc, 0xF00C);
        assert_eq!(dirs.len(), 2);
        assert_eq!(dirs[0].1.mems()[1][2], XWord::from_u16(0xAAAA));
        assert_eq!(dirs[1].1.mems()[1][2], XWord::from_u16(0x5555));
        assert_eq!(dirs[0].1.mems()[0][5], XWord::from_u16(0xBEEF));
        assert_eq!(dirs[0].1.ffs(), &[Lv::One]);
        assert_eq!(dirs[1].1.ffs(), &[Lv::X]);
        // cycle_after = start.cycle + frames + 1
        assert_eq!(dirs[0].1.cycle(), 2);
        assert_eq!(memo.stats().stitched_segments, 3);
    }

    #[test]
    fn disk_mirror_survives_a_fresh_store() {
        let dir = std::env::temp_dir().join(format!("xbound-memo-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let start = state(&[Lv::One, Lv::X], demo_mems(), 4);
        let frames = vec![
            small_frame(&[Lv::X, Lv::Zero]),
            small_frame(&[Lv::One, Lv::Zero]),
        ];
        let reads = [(1u16, 1u32, XWord::ALL_X)];
        {
            let memo = SubtreeMemo::with_dir(dir.clone());
            memo.record(3, 1, &start, &frames, &reads, PathOutcome::Halt);
        }
        let fresh = SubtreeMemo::with_dir(dir.clone());
        assert_eq!(fresh.entries(), 0);
        let hit = fresh.lookup(3, 1, &start).expect("loaded from disk");
        assert_eq!(hit.frames, frames);
        assert_eq!(fresh.entries(), 1, "disk hit adopted into memory");
        // A read-word mismatch is re-verified on the disk path too.
        let mut edited = demo_mems();
        edited[1][1] = XWord::from_u16(0);
        let other = SubtreeMemo::with_dir(dir.clone());
        assert!(other
            .lookup(3, 1, &state(&[Lv::One, Lv::X], edited, 4))
            .is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn codec_round_trips_canonically() {
        let start = state(&[Lv::Zero, Lv::X], demo_mems(), 0);
        let frames = vec![
            small_frame(&[Lv::Zero, Lv::One, Lv::X]),
            small_frame(&[Lv::One, Lv::One, Lv::X]),
        ];
        let first = small_frame(&[Lv::X, Lv::X, Lv::Zero]);
        let after = state(&[Lv::One, Lv::Zero], demo_mems(), 3);
        let written = [(1u16, 3u32)];
        let memo = SubtreeMemo::in_memory();
        memo.record(
            11,
            1,
            &start,
            &frames,
            &[(0, 0, XWord::from_u16(0))],
            PathOutcome::Fork {
                branch_pc: 0x1234,
                dirs: vec![
                    RecordedDir {
                        first_frame: &first,
                        after: &after,
                        written: &written,
                    },
                    RecordedDir {
                        first_frame: &first,
                        after: &after,
                        written: &written,
                    },
                ],
            },
        );
        let map = memo.inner.lock().unwrap();
        let (&key, entry) = map.iter().next().expect("one entry");
        let doc = encode(key, entry);
        let back = decode(&doc).expect("decodes");
        assert_eq!(encode(key, &back), doc, "encode∘decode is the identity");
        assert_eq!(back.frames(), frames);
        assert!(back.verify(11, 1, &start));
    }

    #[test]
    fn context_hash_tracks_result_relevant_knobs_only() {
        let base = ExploreConfig::default();
        let h = |c: &ExploreConfig, lib: &str, hz: f64| context_hash(c, lib, hz);
        let reference = h(&base, "ulp65", 1e8);
        // threads / lanes are scheduling, not results: same context.
        let mut c = base;
        c.threads = 7;
        c.lanes = 16;
        assert_eq!(h(&c, "ulp65", 1e8), reference);
        // Every result-relevant knob and operating-point input changes it.
        for f in [
            (&mut |c: &mut ExploreConfig| c.max_segment_cycles += 1)
                as &mut dyn FnMut(&mut ExploreConfig),
            &mut |c| c.max_total_cycles += 1,
            &mut |c| c.widen_threshold += 1,
            &mut |c| c.reset_cycles += 1,
        ] {
            let mut c = base;
            f(&mut c);
            assert_ne!(h(&c, "ulp65", 1e8), reference);
        }
        assert_ne!(h(&base, "ulp130", 1e8), reference);
        assert_ne!(h(&base, "ulp65", 8e6), reference);
    }

    #[test]
    fn byte_budget_evicts_stale_entries_but_keeps_disk() {
        let dir = std::env::temp_dir().join(format!("xbound-memo-evict-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let memo = SubtreeMemo::new(Some(dir.clone()), 1024);
        let frames: Vec<Frame> = (0..4)
            .map(|i| small_frame(&[Lv::from_code(i % 3), Lv::One]))
            .collect();
        let mut starts = Vec::new();
        for i in 0..8u16 {
            let ffs = vec![
                Lv::from_code((i % 3) as u8),
                Lv::from_code(((i / 3) % 3) as u8),
                Lv::from_code(((i / 9) % 3) as u8),
                Lv::One,
            ];
            let s = state(&ffs, demo_mems(), i as u64);
            memo.record(1, 1, &s, &frames, &[], PathOutcome::Halt);
            starts.push(s);
        }
        assert!(
            memo.entries() < 8,
            "budget of 1 KiB must have evicted something (kept {})",
            memo.entries()
        );
        // Every record also hit disk, so even evicted keys still resolve.
        for s in &starts {
            assert!(memo.lookup(1, 1, s).is_some(), "disk fallback");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
