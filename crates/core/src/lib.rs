//! The paper's contribution: application-specific, input-independent peak
//! power and energy bounds via gate-level symbolic simulation.
//!
//! * [`activity`] — Algorithm 1 (symbolic exploration → execution tree);
//! * [`peak_power`] — Algorithm 2 (even/odd X assignment → per-cycle bound);
//! * [`coi`] — cycles-of-interest: culprit instructions + module breakdown;
//! * [`optimize`] — the three peak-power software optimizations (§5.1);
//! * [`validate`] — toggle-superset and power-dominance checks (§3.4).
//!
//! The high-level entry point is [`CoAnalysis`]:
//!
//! ```
//! use xbound_core::{CoAnalysis, UlpSystem};
//! use xbound_msp430::assemble;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let system = UlpSystem::openmsp430_class()?;
//! let program = assemble(
//!     r#"
//!     main:
//!         mov &0x0020, r4   ; input port -> X during analysis
//!         add r4, r4
//!         mov r4, &0x0200
//!         jmp $
//!     "#,
//! )?;
//! let analysis = CoAnalysis::new(&system).run(&program)?;
//! let peak = analysis.peak_power();
//! assert!(peak.peak_mw > 0.0);
//! // The bound holds for every input:
//! for input in [0u16, 1, 0xFFFF] {
//!     let (frames, trace) = system.profile_concrete(&program, &[input], 10_000)?;
//!     assert!(trace.peak_mw() <= peak.peak_mw + 1e-9);
//!     let sup = analysis.check_superset(&frames);
//!     assert!(sup.is_sound());
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod activity;
pub mod coi;
pub mod memo;
pub mod optimize;
pub mod outdirs;
pub mod par;
pub mod peak_power;
pub mod summary;
pub mod sweep;
pub mod tree;
pub mod validate;

// The canonical JSON reader/writer moved down into the observability
// layer (the workspace's new bottom crate) so instrumented crates can
// serialize metrics without depending on `xbound_core`. Re-exported here
// because every producer of canonical artifacts historically reached
// them as `xbound_core::jsonout` / `xbound_core::jsonin`.
pub use xbound_obs::{jsonin, jsonout};

use std::fmt;
use xbound_cells::CellLibrary;
use xbound_cpu::Cpu;
use xbound_logic::Frame;
use xbound_msp430::Program;
use xbound_netlist::NetlistError;
use xbound_power::{PowerAnalyzer, PowerTrace};
use xbound_sim::SimError;

pub use activity::{BatchExploreStats, ExploreConfig, ExploreStats, SymbolicExplorer};
pub use coi::{cycles_of_interest, CycleOfInterest};
pub use peak_power::{compute_peak_energy, compute_peak_power, PeakEnergyResult, PeakPowerResult};
pub use summary::BoundsReport;
pub use sweep::{run_sweep, Corner, SweepAnalysis, SweepSpec};
pub use tree::{ExecutionTree, SegmentEnd, SegmentId};
pub use validate::{ConcreteRunCheck, DominanceReport, SupersetReport};

/// Errors from the co-analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// The next PC carried X without `branch_taken` being the cause — an
    /// input-dependent computed jump the analysis cannot constrain.
    UnresolvedPc {
        /// Simulation cycle.
        cycle: u64,
        /// FSM state name for diagnostics.
        state: String,
    },
    /// Configured cycle budget exhausted (program may not terminate).
    CycleBudget {
        /// Cycles simulated before giving up.
        cycles: u64,
    },
    /// Underlying simulator error.
    Sim(SimError),
    /// Core construction failed (netlist validation).
    Build(NetlistError),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::UnresolvedPc { cycle, state } => write!(
                f,
                "PC became unknown at cycle {cycle} in state {state}; \
                 input-dependent computed jumps are not supported"
            ),
            AnalysisError::CycleBudget { cycles } => {
                write!(f, "exploration exceeded the cycle budget ({cycles} cycles)")
            }
            AnalysisError::Sim(e) => write!(f, "simulation: {e}"),
            AnalysisError::Build(e) => write!(f, "core construction: {e}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Human-readable name of the gate-evaluation engine the `XBOUND_SIM_ENGINE`
/// environment variable currently selects (`event-driven` when unset).
///
/// Every driver that reports which engine served an analysis (the suite
/// binaries, the co-analysis service's `stats`) goes through this helper;
/// the engines themselves are result-neutral — bounds, trees, and stats are
/// byte-identical across all of them.
///
/// # Panics
///
/// Panics on an unrecognized value (see [`xbound_sim::EvalMode::parse`]).
pub fn sim_engine_name() -> &'static str {
    xbound_sim::EvalMode::from_env().name()
}

impl From<SimError> for AnalysisError {
    fn from(e: SimError) -> AnalysisError {
        AnalysisError::Sim(e)
    }
}

impl From<NetlistError> for AnalysisError {
    fn from(e: NetlistError) -> AnalysisError {
        AnalysisError::Build(e)
    }
}

/// A processor + cell library + operating point under analysis.
#[derive(Debug, Clone)]
pub struct UlpSystem {
    cpu: Cpu,
    library: CellLibrary,
    clock_hz: f64,
}

impl UlpSystem {
    /// Builds a system from parts.
    pub fn new(cpu: Cpu, library: CellLibrary, clock_hz: f64) -> UlpSystem {
        UlpSystem {
            cpu,
            library,
            clock_hz,
        }
    }

    /// The paper's evaluation target: the core mapped to the 65 nm-class
    /// library at 1.0 V / 100 MHz (openMSP430-class).
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors.
    pub fn openmsp430_class() -> Result<UlpSystem, AnalysisError> {
        Ok(UlpSystem::new(Cpu::build()?, CellLibrary::ulp65(), 100.0e6))
    }

    /// The Chapter-2 measurement target: the core mapped to the 130 nm-class
    /// library at 3.0 V / 8 MHz (MSP430F1610-class).
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors.
    pub fn msp430f1610_class() -> Result<UlpSystem, AnalysisError> {
        Ok(UlpSystem::new(Cpu::build()?, CellLibrary::ulp130(), 8.0e6))
    }

    /// The core.
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// The cell library.
    pub fn library(&self) -> &CellLibrary {
        &self.library
    }

    /// Clock frequency, hertz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// A power analyzer bound to this system.
    pub fn analyzer(&self) -> PowerAnalyzer<'_> {
        PowerAnalyzer::new(self.cpu.netlist(), &self.library, self.clock_hz)
    }

    /// Runs a concrete (input-based) simulation to the final self-loop and
    /// returns the per-cycle frames and measured power trace — the
    /// "profiling" runs of the paper's baselines and validation.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::CycleBudget`] if the program does not reach
    /// `jmp $` within `max_cycles`, or a simulator error.
    pub fn profile_concrete(
        &self,
        program: &Program,
        inputs: &[u16],
        max_cycles: u64,
    ) -> Result<(Vec<Frame>, PowerTrace), AnalysisError> {
        let mut sim = self.cpu.new_sim();
        Cpu::load_program(&mut sim, program, true);
        Cpu::set_inputs(&mut sim, inputs);
        let mut frames = Vec::new();
        let mut halted = false;
        for _ in 0..max_cycles {
            let f = sim.eval()?.clone();
            let halt = self.cpu.state(&sim) == Some(xbound_cpu::State::Decode)
                && self.cpu.ir_word(&sim).to_u16() == Some(0x3FFF);
            frames.push(f);
            if halt {
                halted = true;
                break;
            }
            sim.commit();
        }
        if !halted {
            return Err(AnalysisError::CycleBudget {
                cycles: frames.len() as u64,
            });
        }
        let trace = self.analyzer().analyze(&frames);
        Ok((frames, trace))
    }

    /// Batched [`UlpSystem::profile_concrete`]: runs up to
    /// [`xbound_logic::MAX_LANES`] input sets of the same program through
    /// one [`xbound_sim::BatchSimulator`] — one gate pass per cycle for
    /// the whole group. Each returned `(frames, trace)` is bit-identical
    /// to an independent [`UlpSystem::profile_concrete`] run of that
    /// input set (lanes never interact; the per-lane power accumulation
    /// replays the scalar order).
    ///
    /// Lanes halt independently; a lane's frames and trace stop at its
    /// own `jmp $` self-loop even when other lanes run longer.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::CycleBudget`] if any lane fails to halt
    /// within `max_cycles`, or a simulator error.
    ///
    /// # Panics
    ///
    /// Panics if `input_sets` is empty or longer than
    /// [`xbound_logic::MAX_LANES`].
    pub fn profile_concrete_batch(
        &self,
        program: &Program,
        input_sets: &[Vec<u16>],
        max_cycles: u64,
    ) -> Result<Vec<(Vec<Frame>, PowerTrace)>, AnalysisError> {
        let lanes = input_sets.len();
        assert!(
            (1..=xbound_logic::MAX_LANES).contains(&lanes),
            "input population of {lanes} exceeds one batch"
        );
        let mut sim = self.cpu.new_batch_sim(lanes);
        Cpu::load_program_batch(&mut sim, program, true);
        for (lane, inputs) in input_sets.iter().enumerate() {
            Cpu::set_inputs_lane(&mut sim, lane, inputs);
        }
        sim.set_change_logging(true);
        let analyzer = self.analyzer();
        // Power accumulates streaming (no batch-frame sequence is ever
        // materialized), and each lane's scalar frame is reconstructed
        // incrementally from the engine's net-level change log: only nets
        // that actually changed since the previous cycle are rewritten,
        // then the per-lane frame is stored by (cheap, word-packed) clone
        // — the same storage the scalar path produces.
        let mut acc = analyzer.batch_accumulator(lanes);
        let mut prev: Option<xbound_logic::BatchFrame> = None;
        let mut cur_lane: Vec<Frame> = Vec::new();
        let mut changes: Vec<u32> = Vec::new();
        let mut lane_frames: Vec<Vec<Frame>> = vec![Vec::new(); lanes];
        // One-past-the-halt-frame cycle count per lane (0 = still running).
        let mut lane_cycles = vec![0usize; lanes];
        let mut running = lanes;
        for _ in 0..max_cycles {
            sim.eval()?;
            sim.swap_change_log(&mut changes);
            // The sorted, deduplicated log serves both the per-lane frame
            // reconstruction and the power accumulator (whose f64 order
            // requires ascending nets).
            changes.sort_unstable();
            changes.dedup();
            let bf = sim.frame();
            match &mut prev {
                None => {
                    cur_lane = (0..lanes).map(|l| bf.lane_frame(l)).collect();
                    prev = Some(bf.clone());
                }
                Some(prev) => {
                    for &i in &changes {
                        let i = i as usize;
                        let p = prev.get(i);
                        let q = bf.get(i);
                        let mut changed = (p.val ^ q.val) | (p.unk ^ q.unk);
                        while changed != 0 {
                            let l = changed.trailing_zeros() as usize;
                            cur_lane[l].set(i, q.get(l));
                            changed &= changed - 1;
                        }
                        prev.set(i, q);
                    }
                }
            }
            acc.push_changed(bf, &changes);
            changes.clear();
            for (lane, n) in lane_cycles.iter_mut().enumerate() {
                if *n == 0 {
                    lane_frames[lane].push(cur_lane[lane].clone());
                    let halt = self.cpu.state_lane(&sim, lane) == Some(xbound_cpu::State::Decode)
                        && self.cpu.ir_word_lane(&sim, lane).to_u16() == Some(0x3FFF);
                    if halt {
                        *n = lane_frames[lane].len();
                        running -= 1;
                    }
                }
            }
            if running == 0 {
                break;
            }
            sim.commit();
        }
        if running > 0 {
            return Err(AnalysisError::CycleBudget {
                cycles: acc.cycles() as u64,
            });
        }
        let traces = acc.finish(Some(&lane_cycles));
        Ok(lane_frames.into_iter().zip(traces).collect())
    }

    /// Runs a whole population of input sets through the batched engine,
    /// chunked into lane groups of `lanes` (0 = auto, see
    /// [`par::resolve_lanes`]) that fan out across `threads` workers
    /// (0 = auto) — parallelism × bit-parallelism. Output order matches
    /// `input_sets`, and every entry is bit-identical to a scalar
    /// [`UlpSystem::profile_concrete`] run at any lane width or thread
    /// count.
    ///
    /// # Errors
    ///
    /// Propagates the first failing chunk's error in population order.
    pub fn profile_concrete_population(
        &self,
        program: &Program,
        input_sets: &[Vec<u16>],
        max_cycles: u64,
        lanes: usize,
        threads: usize,
    ) -> Result<Vec<(Vec<Frame>, PowerTrace)>, AnalysisError> {
        if input_sets.is_empty() {
            return Ok(Vec::new());
        }
        let lanes = par::resolve_lanes(lanes);
        let chunks: Vec<&[Vec<u16>]> = input_sets.chunks(lanes).collect();
        let results = par::par_map(threads, chunks, |_, chunk| {
            self.profile_concrete_batch(program, chunk, max_cycles)
        });
        let mut out = Vec::with_capacity(input_sets.len());
        for r in results {
            out.extend(r?);
        }
        Ok(out)
    }
}

/// Builder for one co-analysis run.
#[derive(Debug, Clone)]
pub struct CoAnalysis<'s> {
    system: &'s UlpSystem,
    config: ExploreConfig,
    energy_rounds: u64,
    memo: Option<std::sync::Arc<memo::SubtreeMemo>>,
}

impl<'s> CoAnalysis<'s> {
    /// Creates an analysis with default configuration.
    pub fn new(system: &'s UlpSystem) -> CoAnalysis<'s> {
        CoAnalysis {
            system,
            config: ExploreConfig::default(),
            energy_rounds: 10_000,
            memo: None,
        }
    }

    /// Overrides the exploration configuration.
    pub fn config(mut self, config: ExploreConfig) -> CoAnalysis<'s> {
        self.config = config;
        self
    }

    /// Sets the value-iteration round budget for peak energy — acts as the
    /// loop-iteration bound of §3.3 for input-dependent loops.
    pub fn energy_rounds(mut self, rounds: u64) -> CoAnalysis<'s> {
        self.energy_rounds = rounds;
        self
    }

    /// Attaches (or detaches, with `None`) a subtree memo store for
    /// incremental re-analysis. The context hash binding the store to
    /// this system's exploration knobs, cell library, and clock is
    /// computed here; the result is byte-identical either way (see
    /// [`memo::SubtreeMemo`]).
    pub fn memo(mut self, memo: Option<std::sync::Arc<memo::SubtreeMemo>>) -> CoAnalysis<'s> {
        self.memo = memo;
        self
    }

    /// Runs Algorithm 1 + Algorithm 2 + the peak-energy computation.
    ///
    /// # Errors
    ///
    /// See [`AnalysisError`].
    pub fn run(self, program: &Program) -> Result<Analysis<'s>, AnalysisError> {
        let _span = xbound_obs::trace::span("co_analysis");
        xbound_obs::metrics::counter("xbound_analyses_total").inc();
        let mut explorer = SymbolicExplorer::new(self.system.cpu(), self.config);
        let ctx = memo::context_hash(
            &self.config,
            self.system.library().name(),
            self.system.clock_hz(),
        );
        if let Some(store) = &self.memo {
            explorer = explorer.with_memo(store.clone(), ctx);
        }
        let (tree, stats) = explorer.explore(program)?;
        let peak = peak_power::compute_peak_power_cached(
            self.system.cpu().netlist(),
            self.system.library(),
            self.system.clock_hz(),
            &tree,
            true,
            self.memo.as_deref().map(|m| (m.power(), ctx)),
        );
        let energy = compute_peak_energy(&tree, &peak, self.system.clock_hz(), self.energy_rounds);
        Ok(Analysis {
            system: self.system,
            tree,
            stats,
            peak,
            energy,
        })
    }
}

/// The result of one co-analysis.
#[derive(Debug, Clone)]
pub struct Analysis<'s> {
    system: &'s UlpSystem,
    tree: ExecutionTree,
    stats: ExploreStats,
    peak: PeakPowerResult,
    energy: PeakEnergyResult,
}

impl Analysis<'_> {
    /// The annotated execution tree.
    pub fn tree(&self) -> &ExecutionTree {
        &self.tree
    }

    /// Exploration statistics.
    pub fn stats(&self) -> &ExploreStats {
        &self.stats
    }

    /// The input-independent peak power bound.
    pub fn peak_power(&self) -> &PeakPowerResult {
        &self.peak
    }

    /// The input-independent peak energy bound.
    pub fn peak_energy(&self) -> PeakEnergyResult {
        self.energy
    }

    /// The system under analysis.
    pub fn system(&self) -> &UlpSystem {
        self.system
    }

    /// Top-`k` cycles of interest (culprit instructions + breakdowns).
    pub fn cycles_of_interest(&self, k: usize) -> Vec<CycleOfInterest> {
        cycles_of_interest(self.system.cpu(), &self.tree, &self.peak, k)
    }

    /// Toggle-superset check against a concrete run (Fig 12).
    pub fn check_superset(&self, concrete_frames: &[Frame]) -> SupersetReport {
        validate::check_toggle_superset(
            &self.tree,
            self.system.cpu().netlist().net_count(),
            concrete_frames,
        )
    }

    /// Power-dominance check against a measured concrete trace (Fig 13).
    ///
    /// Returns `None` when the concrete run leaves the explored tree —
    /// which would indicate an exploration bug.
    pub fn check_dominance(
        &self,
        concrete_frames: &[Frame],
        measured: &PowerTrace,
    ) -> Option<DominanceReport> {
        validate::check_power_dominance(
            self.system.cpu(),
            &self.tree,
            &self.peak,
            concrete_frames,
            measured.per_cycle_mw(),
        )
    }

    /// Validates the analysis against a whole population of concrete
    /// runs through the batched engine (Figs 12 + 13 at scale): input
    /// sets are chunked into lane groups (`lanes`, 0 = auto) that fan
    /// out across `threads` workers (0 = auto), and each run is checked
    /// for toggle-superset and power dominance. Reports are ordered like
    /// `input_sets` and bit-identical to per-run scalar validation at
    /// any lane width or thread count.
    ///
    /// # Errors
    ///
    /// Propagates concrete-simulation errors (e.g. a run exceeding
    /// `max_cycles`).
    pub fn validate_population(
        &self,
        program: &Program,
        input_sets: &[Vec<u16>],
        max_cycles: u64,
        lanes: usize,
        threads: usize,
    ) -> Result<Vec<ConcreteRunCheck>, AnalysisError> {
        let runs = self
            .system
            .profile_concrete_population(program, input_sets, max_cycles, lanes, threads)?;
        Ok(runs
            .iter()
            .map(|(frames, trace)| ConcreteRunCheck {
                superset: self.check_superset(frames),
                dominance: self.check_dominance(frames, trace),
            })
            .collect())
    }
}
