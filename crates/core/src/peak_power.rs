//! Algorithm 2: input-independent peak power computation.
//!
//! The activity-annotated execution tree contains X values wherever the
//! application could not constrain a net. To bound peak power, the Xs of
//! every pair of consecutive cycles `(c−1, c)` are assigned the values that
//! maximize switching energy in cycle `c`:
//!
//! * `(X, X)` → the cell's **maximum-energy transition** (library lookup);
//! * `(v, X)` → `!v` (force a toggle into cycle `c`);
//! * `(X, v)` → `!v` in `c−1` (same);
//!
//! Because assigning `c−1` to maximize cycle `c` conflicts with maximizing
//! cycle `c−1` itself, two assignments are produced — one maximizing all
//! **even** cycles and one all **odd** cycles — power-analyzed separately,
//! and interleaved into the per-cycle peak-power bound trace. The peak
//! power requirement is the maximum of that trace (paper Fig 10 / §3.2).

use crate::tree::{ExecutionTree, SegmentEnd, SegmentId};
use xbound_cells::CellLibrary;
use xbound_logic::{Frame, Lv};
use xbound_netlist::{NetId, Netlist};
use xbound_power::{EnergyTrace, PowerAnalyzer, PowerTrace};

/// Cycle parity an assignment maximizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parity {
    /// Maximize even global cycles.
    Even,
    /// Maximize odd global cycles.
    Odd,
}

impl Parity {
    /// `true` when `cycle` has this parity.
    pub fn matches(self, cycle: u64) -> bool {
        match self {
            Parity::Even => cycle % 2 == 0,
            Parity::Odd => cycle % 2 == 1,
        }
    }
}

/// Per-segment resolved frames for one parity assignment.
#[derive(Debug, Clone)]
pub struct ParityAssignment {
    /// Which parity this assignment maximizes.
    pub parity: Parity,
    /// Per segment: the resolved boundary-previous frame (parent's last
    /// frame, private copy) and the resolved segment frames.
    pub segments: Vec<(Option<Frame>, Vec<Frame>)>,
}

/// The peak-power result for one application.
#[derive(Debug, Clone)]
pub struct PeakPowerResult {
    /// Peak power bound, milliwatts.
    pub peak_mw: f64,
    /// Segment and in-segment cycle of the peak.
    pub peak_at: (SegmentId, usize),
    /// Global cycle index of the peak.
    pub peak_cycle: u64,
    /// Per-segment interleaved peak-power bound traces, milliwatts
    /// (`bound[segment][cycle]`).
    pub bound_mw: Vec<Vec<f64>>,
    /// Power traces of the even assignment, per segment.
    pub even_traces: Vec<PowerTrace>,
    /// Power traces of the odd assignment, per segment.
    pub odd_traces: Vec<PowerTrace>,
}

impl PeakPowerResult {
    /// The bound trace of one segment.
    pub fn segment_bound_mw(&self, id: SegmentId) -> &[f64] {
        &self.bound_mw[id.index()]
    }

    /// Maximum bound at each global cycle across all tree paths (the
    /// envelope used for plotting Fig 11-style traces).
    pub fn envelope_mw(&self, tree: &ExecutionTree) -> Vec<f64> {
        let total = tree
            .segments()
            .iter()
            .map(|s| s.start_cycle + s.len() as u64)
            .max()
            .unwrap_or(0) as usize;
        let mut env = vec![0.0f64; total];
        for (si, seg) in tree.segments().iter().enumerate() {
            for ci in 0..seg.len() {
                let g = seg.global_cycle(ci) as usize;
                env[g] = env[g].max(self.bound_mw[si][ci]);
            }
        }
        env
    }
}

/// Computes per-net *stability* between two consecutive frames: a net is
/// stable when its value provably cannot differ between the two cycles,
/// even if that value is X. Rules (each individually sound):
///
/// * a net whose value is concrete and equal in both frames is stable;
/// * a flip-flop held by its enable (`en = 0` concrete at the earlier
///   cycle, and reset inactive) keeps its stored value — stable even if X;
/// * a combinational gate whose inputs are all stable produces the same
///   value — stable (combinational determinism).
///
/// This removes the dominant pessimism of a naive X assignment: idle
/// X-valued cones (e.g. the hardware-multiplier array between multiplies)
/// cannot toggle, because their registered operands are held.
pub fn stability(nl: &Netlist, prev: &Frame, cur: &Frame) -> Vec<bool> {
    let mut words = Vec::new();
    stability_words_into(nl, prev, cur, &mut words);
    (0..nl.net_count()).map(|i| bit(&words, i)).collect()
}

#[inline]
fn bit(words: &[u64], i: usize) -> bool {
    (words[i / 64] >> (i % 64)) & 1 == 1
}

#[inline]
fn set_bit(words: &mut [u64], i: usize) {
    words[i / 64] |= 1 << (i % 64);
}

/// Word-packed form of [`stability`] into a reusable bitset buffer — the
/// per-cycle-pair kernel of Algorithm 2.
///
/// The dominant rule ("concrete and equal in both frames") is computed for
/// every net at once with word-wide bit math over the packed frames; the
/// held-flip-flop and combinational-propagation rules then only examine
/// gates whose output is not already proven stable.
pub fn stability_words_into(nl: &Netlist, prev: &Frame, cur: &Frame, stable: &mut Vec<u64>) {
    // Base rule, all nets at once: known in both frames and equal. For
    // primary inputs this is the complete rule; for gate outputs the
    // remaining rules below can only add stability.
    prev.known_equal_words_into(cur, stable);
    // Sequential outputs: a flip-flop held by its enable keeps its stored
    // value — stable even if that value is X.
    for &g in nl.sequential_gates() {
        let gate = nl.gate(g);
        let out = gate.output().index();
        if bit(stable, out) {
            continue;
        }
        let v = |k: usize| prev.get(gate.inputs()[k].index());
        let held = match gate.kind() {
            xbound_netlist::CellKind::Dffe => v(1) == Lv::Zero,
            xbound_netlist::CellKind::Dffre => v(1) == Lv::Zero && v(2) == Lv::One,
            _ => false,
        };
        if held {
            set_bit(stable, out);
        }
    }
    // Combinational propagation in topological order: a gate whose inputs
    // are all stable produces the same value (combinational determinism).
    for &g in nl.topo_order() {
        let gate = nl.gate(g);
        let out = gate.output().index();
        if bit(stable, out) {
            continue;
        }
        let ok = if matches!(
            gate.kind(),
            xbound_netlist::CellKind::Tie0 | xbound_netlist::CellKind::Tie1
        ) {
            true
        } else {
            gate.kind().input_count() > 0 && gate.inputs().iter().all(|n| bit(stable, n.index()))
        };
        if ok {
            set_bit(stable, out);
        }
    }
}

/// Builds per-segment frame copies with **merge-boundary joins** applied:
/// when a merged path continues in a covering segment, the covering
/// segment's first frame is joined with every merged child's final frame,
/// so the transition into the continuation cycle accounts for *any* of the
/// merged predecessors (join only adds X — conservative).
pub fn merge_adjusted_frames(tree: &ExecutionTree) -> Vec<Vec<Frame>> {
    let mut adjusted: Vec<Vec<Frame>> = tree.segments().iter().map(|s| s.frames.clone()).collect();
    for seg in tree.segments() {
        if let SegmentEnd::Merged { into, .. } = seg.end {
            if let Some(last) = seg.frames.last() {
                if !adjusted[into.index()].is_empty() {
                    adjusted[into.index()][0].join_in_place(last);
                }
            }
        }
    }
    adjusted
}

/// Assigns Xs for one parity over the whole tree.
///
/// Segment-boundary pairs use a private copy of the parent's last frame so
/// sibling paths cannot constrain each other (keeps the bound sound for
/// every path independently). Pairs proved stable by [`stability`] are
/// held (no transition charged); the rest follow the paper's maximizing
/// assignment. Frames come from [`merge_adjusted_frames`], which makes the
/// bound valid for paths that re-enter a segment through a memoization
/// merge.
pub fn assign_parity(
    nl: &Netlist,
    lib: &CellLibrary,
    tree: &ExecutionTree,
    parity: Parity,
) -> ParityAssignment {
    let adjusted = merge_adjusted_frames(tree);
    assign_parity_with(nl, lib, tree, &adjusted, parity)
}

/// [`assign_parity`] over precomputed adjusted frames (shared between the
/// even and odd assignments).
pub fn assign_parity_with(
    nl: &Netlist,
    lib: &CellLibrary,
    tree: &ExecutionTree,
    adjusted: &[Vec<Frame>],
    parity: Parity,
) -> ParityAssignment {
    assign_parity_opts(nl, lib, tree, adjusted, parity, true)
}

/// [`assign_parity_with`] with the stability analysis optionally disabled —
/// used by the ablation experiment to quantify how much pessimism the
/// stability rules remove (naive Algorithm 2 charges every X pair).
pub fn assign_parity_opts(
    nl: &Netlist,
    lib: &CellLibrary,
    tree: &ExecutionTree,
    adjusted: &[Vec<Frame>],
    parity: Parity,
    use_stability: bool,
) -> ParityAssignment {
    let tr = MaxTransitions::build(nl, lib);
    let mut st = AssignScratch::new(nl);
    let segments = (0..tree.segments().len())
        .map(|si| assign_segment(nl, tree, adjusted, si, parity, use_stability, &tr, &mut st))
        .collect();
    ParityAssignment { parity, segments }
}

/// Max transition (first, second) per net, by driver cell, packed as
/// word-wide bitplanes for the word-parallel resolve kernel; primary
/// inputs default to (false, true).
///
/// The table is a pure function of *(netlist, library energy ordering)*:
/// it only reads each cell's [`xbound_cells::CellPower::max_transition`]
/// direction, never the energy magnitudes. Build it once per
/// `(netlist, library)` and reuse it across every
/// [`compute_peak_power_shared`] call — in particular across all the
/// voltage/clock corners of an operating-point sweep, since a voltage
/// derate scales rise and fall by the same factor and cannot flip any
/// direction (see [`xbound_cells::CellLibrary::derated`]).
#[derive(Debug, Clone)]
pub struct MaxTransitions {
    first: Vec<u64>,
    second: Vec<u64>,
}

impl MaxTransitions {
    /// Builds the table for `nl` mapped to `lib`.
    pub fn build(nl: &Netlist, lib: &CellLibrary) -> MaxTransitions {
        let words = nl.net_count().div_ceil(64);
        let mut first = vec![0u64; words];
        let mut second = vec![0u64; words];
        for i in 0..nl.net_count() {
            let (a, b) = match nl.driver_of(NetId(i as u32)) {
                Some(g) => lib.power(nl.gate(g).kind()).max_transition(),
                None => (false, true),
            };
            if a {
                first[i / 64] |= 1 << (i % 64);
            }
            if b {
                second[i / 64] |= 1 << (i % 64);
            }
        }
        MaxTransitions { first, second }
    }
}

/// Reusable per-tree scratch for the assignment kernel: the stability
/// bitset and its all-zero stand-in for the ablation path.
struct AssignScratch {
    st: Vec<u64>,
    no_stability: Vec<u64>,
}

impl AssignScratch {
    fn new(nl: &Netlist) -> AssignScratch {
        AssignScratch {
            st: Vec::new(),
            no_stability: vec![0u64; nl.net_count().div_ceil(64)],
        }
    }
}

/// The per-segment body of [`assign_parity_opts`]: resolves one segment's
/// Xs for one parity. Depends only on the segment's adjusted frames, its
/// parent's adjusted last frame, and the segment's start-cycle parity —
/// which is what makes the segment-power composition cache of
/// [`compute_peak_power_cached`] sound.
#[allow(clippy::too_many_arguments)]
fn assign_segment(
    nl: &Netlist,
    tree: &ExecutionTree,
    adjusted: &[Vec<Frame>],
    si: usize,
    parity: Parity,
    use_stability: bool,
    tr: &MaxTransitions,
    scratch: &mut AssignScratch,
) -> (Option<Frame>, Vec<Frame>) {
    let seg = &tree.segments()[si];
    // Boundary-previous frame: the parent's (adjusted) last frame.
    let mut boundary = seg
        .parent
        .and_then(|(pid, _)| adjusted[pid.index()].last().cloned());
    let orig = &adjusted[si];
    let mut frames: Vec<Frame> = orig.clone();
    for ci in 0..frames.len() {
        let gc = seg.global_cycle(ci);
        if !parity.matches(gc) || (ci == 0 && boundary.is_none()) {
            continue;
        }
        // Stability is computed on the *pre-assignment* frames; a pair
        // with no X anywhere needs neither stability nor resolution.
        let orig_prev = if ci == 0 {
            seg.parent
                .and_then(|(pid, _)| adjusted[pid.index()].last())
                .expect("boundary exists")
        } else {
            &orig[ci - 1]
        };
        if orig_prev.x_count() == 0 && orig[ci].x_count() == 0 {
            continue;
        }
        let stable: &[u64] = if use_stability {
            stability_words_into(nl, orig_prev, &orig[ci], &mut scratch.st);
            &scratch.st
        } else {
            &scratch.no_stability
        };
        if ci == 0 {
            let b = boundary.as_mut().expect("checked");
            Frame::assign_x_pair(b, &mut frames[0], stable, &tr.first, &tr.second);
        } else {
            let (a, b) = frames.split_at_mut(ci);
            Frame::assign_x_pair(&mut a[ci - 1], &mut b[0], stable, &tr.first, &tr.second);
        }
    }
    // Leftover Xs (off-parity positions and cycle 0) hold 0: their
    // cycles are discarded by the interleaving.
    if let Some(b) = boundary.as_mut() {
        b.resolve_x_to_zero();
    }
    for f in &mut frames {
        f.resolve_x_to_zero();
    }
    (boundary, frames)
}

/// Both parity assignments of a whole tree — the discrete stage of
/// Algorithm 2.
///
/// The assignment depends on the library only through the
/// [`MaxTransitions`] table, which is shared by every voltage derate of a
/// base library. An operating-point sweep therefore resolves the tree's
/// Xs **once per base library** and reuses the frames for every corner;
/// frames are exact logic values, so the reuse cannot perturb a single
/// bit downstream.
#[derive(Debug, Clone)]
pub struct TreeAssignments {
    /// The even-maximizing assignment.
    pub even: ParityAssignment,
    /// The odd-maximizing assignment.
    pub odd: ParityAssignment,
}

/// Resolves both parity assignments over precomputed adjusted frames and
/// a precomputed max-transitions table (the per-base-library stage of a
/// sweep; see [`TreeAssignments`]).
pub fn assign_tree(
    nl: &Netlist,
    tree: &ExecutionTree,
    adjusted: &[Vec<Frame>],
    use_stability: bool,
    tr: &MaxTransitions,
) -> TreeAssignments {
    let mut st = AssignScratch::new(nl);
    let mut resolve = |parity| ParityAssignment {
        parity,
        segments: (0..tree.segments().len())
            .map(|si| assign_segment(nl, tree, adjusted, si, parity, use_stability, tr, &mut st))
            .collect(),
    };
    TreeAssignments {
        even: resolve(Parity::Even),
        odd: resolve(Parity::Odd),
    }
}

/// Per-segment even/odd **energy** traces of one library — the gate-level
/// stage of Algorithm 2, stopped before the clock enters.
///
/// Transition energies depend on the (possibly derated) library but not
/// on the clock ([`EnergyTrace`]); a sweep runs this once per distinct
/// library and converts per corner via [`compose_peak_power`].
#[derive(Debug, Clone)]
pub struct TreeEnergyTraces {
    /// Even-assignment energy traces, per segment.
    pub even: Vec<EnergyTrace>,
    /// Odd-assignment energy traces, per segment.
    pub odd: Vec<EnergyTrace>,
}

/// Power-analyzes both assignments into per-segment energy traces under
/// `analyzer`'s library (the per-library stage of a sweep; `analyzer`'s
/// clock is not read — see [`TreeEnergyTraces`]).
pub fn analyze_tree_energy(
    analyzer: &PowerAnalyzer,
    assignments: &TreeAssignments,
) -> TreeEnergyTraces {
    let energy = |asg: &ParityAssignment| {
        asg.segments
            .iter()
            .map(|(boundary, frames)| {
                analyzer.analyze_energy_with_boundary(boundary.as_ref(), frames)
            })
            .collect()
    };
    TreeEnergyTraces {
        even: energy(&assignments.even),
        odd: energy(&assignments.odd),
    }
}

/// Converts shared energy traces at `analyzer`'s clock and composes the
/// peak-power bound — the per-corner stage of a sweep.
///
/// Bit-identical to [`compute_peak_power_shared`] over the same
/// assignments with `analyzer`'s library and clock: the conversion
/// replays the exact float operations of the analyzer's own finish step
/// ([`EnergyTrace::to_power_trace`]), and the composition below is the
/// same code both paths run.
pub fn compose_peak_power(
    tree: &ExecutionTree,
    analyzer: &PowerAnalyzer,
    energy: &TreeEnergyTraces,
) -> PeakPowerResult {
    let convert =
        |traces: &[EnergyTrace]| traces.iter().map(|e| e.to_power_trace(analyzer)).collect();
    compose_bound(tree, convert(&energy.even), convert(&energy.odd))
}

/// Runs Algorithm 2 end-to-end: even/odd assignment, power analysis of
/// both, and interleaving into the peak-power bound.
pub fn compute_peak_power(
    nl: &Netlist,
    lib: &CellLibrary,
    clock_hz: f64,
    tree: &ExecutionTree,
) -> PeakPowerResult {
    compute_peak_power_opts(nl, lib, clock_hz, tree, true)
}

/// [`compute_peak_power`] with the stability analysis optionally disabled
/// (ablation knob; `use_stability = false` is the paper's literal
/// Algorithm 2 without the structural-stability refinement).
pub fn compute_peak_power_opts(
    nl: &Netlist,
    lib: &CellLibrary,
    clock_hz: f64,
    tree: &ExecutionTree,
    use_stability: bool,
) -> PeakPowerResult {
    compute_peak_power_cached(nl, lib, clock_hz, tree, use_stability, None)
}

/// [`compute_peak_power_opts`] with an optional **segment-power
/// composition cache** (incremental re-analysis). Each segment's pair of
/// parity traces is a pure function of `(context, start-cycle parity,
/// boundary frame, adjusted frames)`; on a warm re-analysis the traces of
/// unperturbed segments are replayed from the cache (after exact-equality
/// verification of that whole key) instead of re-running the stability /
/// X-assignment / power-analysis kernels. The composed bound is
/// recomputed from the traces either way, so the result is byte-identical
/// with or without a cache — see `crates/core/tests/incremental.rs`.
pub fn compute_peak_power_cached(
    nl: &Netlist,
    lib: &CellLibrary,
    clock_hz: f64,
    tree: &ExecutionTree,
    use_stability: bool,
    cache: Option<(&crate::memo::SegmentPowerCache, u64)>,
) -> PeakPowerResult {
    let adjusted = merge_adjusted_frames(tree);
    let tr = MaxTransitions::build(nl, lib);
    compute_peak_power_shared(
        nl,
        lib,
        clock_hz,
        tree,
        use_stability,
        &tr,
        &adjusted,
        cache,
    )
}

/// [`compute_peak_power_cached`] over a **precomputed** max-transitions
/// table and merge-adjusted frames — the per-corner kernel of an
/// operating-point sweep ([`crate::sweep`]).
///
/// Both precomputed inputs are corner-invariant: the adjusted frames
/// depend only on the execution tree, and the table only on the library's
/// per-cell energy *ordering* (preserved by voltage derating). A sweep
/// therefore computes each once and fans this function out per corner;
/// the single-corner entry points above delegate here after computing the
/// same values, so the result is byte-identical either way.
#[allow(clippy::too_many_arguments)]
pub fn compute_peak_power_shared(
    nl: &Netlist,
    lib: &CellLibrary,
    clock_hz: f64,
    tree: &ExecutionTree,
    use_stability: bool,
    tr: &MaxTransitions,
    adjusted: &[Vec<Frame>],
    cache: Option<(&crate::memo::SegmentPowerCache, u64)>,
) -> PeakPowerResult {
    let _span = xbound_obs::trace::span_args("peak_power_compose", || {
        vec![
            ("library".to_string(), lib.name().to_string()),
            ("clock_hz".to_string(), format!("{clock_hz}")),
            ("segments".to_string(), tree.segments().len().to_string()),
        ]
    });
    let analyzer = PowerAnalyzer::new(nl, lib, clock_hz);
    let mut scratch = AssignScratch::new(nl);
    // `use_stability` is result-relevant: fold it into the cache context so
    // the ablation path can never stitch stability-refined traces.
    let cache = cache.map(|(c, ctx)| (c, ctx ^ if use_stability { 0 } else { 0x5354_4142 }));

    let mut even_traces = Vec::with_capacity(tree.segments().len());
    let mut odd_traces = Vec::with_capacity(tree.segments().len());
    for (si, seg) in tree.segments().iter().enumerate() {
        let boundary = seg.parent.and_then(|(pid, _)| adjusted[pid.index()].last());
        let odd_start = seg.start_cycle % 2 == 1;
        if let Some((c, ctx)) = cache {
            if let Some((e, o)) = c.lookup(ctx, odd_start, boundary, &adjusted[si]) {
                even_traces.push(e);
                odd_traces.push(o);
                continue;
            }
        }
        let ev = assign_segment(
            nl,
            tree,
            adjusted,
            si,
            Parity::Even,
            use_stability,
            tr,
            &mut scratch,
        );
        let od = assign_segment(
            nl,
            tree,
            adjusted,
            si,
            Parity::Odd,
            use_stability,
            tr,
            &mut scratch,
        );
        let et = analyzer.analyze_with_boundary(ev.0.as_ref(), &ev.1);
        let ot = analyzer.analyze_with_boundary(od.0.as_ref(), &od.1);
        if let Some((c, ctx)) = cache {
            c.record(ctx, odd_start, boundary, &adjusted[si], &et, &ot);
        }
        even_traces.push(et);
        odd_traces.push(ot);
    }
    compose_bound(tree, even_traces, odd_traces)
}

/// Interleaves per-segment even/odd traces into the peak-power bound —
/// the one composition loop shared by every Algorithm 2 entry point
/// (single-corner, cached, and sweep), which is what keeps their results
/// byte-identical.
fn compose_bound(
    tree: &ExecutionTree,
    even_traces: Vec<PowerTrace>,
    odd_traces: Vec<PowerTrace>,
) -> PeakPowerResult {
    let mut bound = Vec::with_capacity(tree.segments().len());
    let mut peak = 0.0f64;
    let mut peak_at = (SegmentId(0), 0usize);
    let mut peak_cycle = 0u64;
    for (si, seg) in tree.segments().iter().enumerate() {
        // Per-trace cycle offset: traces with a boundary frame have one
        // extra leading cycle (the trace is longer than the segment by
        // exactly that boundary cycle).
        let off = even_traces[si].cycles() - seg.len();
        let mut seg_bound = Vec::with_capacity(seg.len());
        for ci in 0..seg.len() {
            let gc = seg.global_cycle(ci);
            // The bound for a cycle is the larger of the even- and
            // odd-maximizing assignments. The paper interleaves by parity;
            // taking the max additionally keeps the per-cycle bound valid
            // for paths that reach this segment through a memoization merge
            // with the opposite parity (loop bodies of odd length).
            let p = even_traces[si].per_cycle_mw()[ci + off]
                .max(odd_traces[si].per_cycle_mw()[ci + off]);
            seg_bound.push(p);
            if p > peak {
                peak = p;
                peak_at = (SegmentId(si as u32), ci);
                peak_cycle = gc;
            }
        }
        bound.push(seg_bound);
    }
    PeakPowerResult {
        peak_mw: peak,
        peak_at,
        peak_cycle,
        bound_mw: bound,
        even_traces,
        odd_traces,
    }
}

/// Peak-energy computation over the execution tree.
///
/// Total energy of a path is the sum of per-cycle peak-power bounds times
/// the clock period; the peak energy requirement is the maximum over all
/// root-to-halt paths. Merges (memoization edges) make the graph cyclic for
/// input-dependent loops; the value iteration below walks the graph for a
/// bounded number of rounds — exact when it converges (DAG) and otherwise
/// bounded by `max_rounds` (callers supply the loop bound per the paper's
/// §3.3: static analysis or user input).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakEnergyResult {
    /// Peak energy bound over a full execution, joules.
    pub peak_energy_j: f64,
    /// Cycles of the maximizing path.
    pub cycles: u64,
    /// Normalized peak energy (J/cycle) — the paper's Fig 15b/17 metric.
    pub npe_j_per_cycle: f64,
    /// `true` if the value iteration converged (no unbounded loop left).
    pub converged: bool,
}

/// Computes peak energy via value iteration (see [`PeakEnergyResult`]).
pub fn compute_peak_energy(
    tree: &ExecutionTree,
    peak: &PeakPowerResult,
    clock_hz: f64,
    max_rounds: u64,
) -> PeakEnergyResult {
    let _span = xbound_obs::trace::span("peak_energy");
    let period = 1.0 / clock_hz;
    let n = tree.segments().len();
    // Per-segment local energy (J) and cycle count.
    let local: Vec<(f64, u64)> = (0..n)
        .map(|si| {
            let e: f64 = peak.bound_mw[si].iter().map(|mw| mw * 1e-3 * period).sum();
            (e, tree.segments()[si].len() as u64)
        })
        .collect();
    // Value iteration: E[s] = local(s) + max over successors.
    let succ: Vec<Vec<usize>> = (0..n)
        .map(|si| match &tree.segments()[si].end {
            SegmentEnd::Halt | SegmentEnd::Truncated => Vec::new(),
            SegmentEnd::Fork {
                taken, not_taken, ..
            } => vec![taken.index(), not_taken.index()],
            SegmentEnd::Merged { into, .. } => vec![into.index()],
        })
        .collect();
    let mut e = vec![(0.0f64, 0u64); n];
    let mut converged = false;
    for _ in 0..max_rounds {
        let mut changed = false;
        for si in (0..n).rev() {
            let best = succ[si]
                .iter()
                .map(|&t| e[t])
                .max_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"))
                .unwrap_or((0.0, 0));
            let cand = (local[si].0 + best.0, local[si].1 + best.1);
            if cand.0 > e[si].0 + 1e-18 {
                e[si] = cand;
                changed = true;
            }
        }
        if !changed {
            converged = true;
            break;
        }
    }
    let (energy, cycles) = e[tree.root().index()];
    PeakEnergyResult {
        peak_energy_j: energy,
        cycles,
        npe_j_per_cycle: if cycles > 0 {
            energy / cycles as f64
        } else {
            0.0
        },
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{ForkChoice, Segment};
    use xbound_logic::Frame;
    use xbound_netlist::rtl::Rtl;

    /// A 3-net design standing in for the paper's Fig 10/3.2 example.
    fn toy() -> Netlist {
        let mut r = Rtl::new("toy");
        let a = r.input_bit("a");
        let b = r.input_bit("b");
        let g1 = r.and(a, b);
        let g2 = r.or(a, b);
        let g3 = r.xor(g1, g2);
        r.output_bit("g1", g1);
        r.output_bit("g2", g2);
        r.output_bit("g3", g3);
        r.finish().expect("builds")
    }

    fn frame_of(nl: &Netlist, vals: &[(usize, Lv)]) -> Frame {
        let mut f = Frame::new(nl.net_count());
        for &(i, v) in vals {
            f.set(i, v);
        }
        f
    }

    fn single_segment_tree(nl: &Netlist, rows: &[Vec<Lv>]) -> ExecutionTree {
        let mut tree = ExecutionTree::new();
        let frames: Vec<Frame> = rows
            .iter()
            .map(|row| {
                frame_of(
                    nl,
                    &row.iter()
                        .enumerate()
                        .map(|(i, v)| (i, *v))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        tree.push(Segment {
            parent: None,
            start_cycle: 0,
            frames,
            end: SegmentEnd::Halt,
        });
        tree
    }

    #[test]
    fn fig_3_2_style_assignment_rules() {
        use Lv::{One, Zero, X};
        let nl = toy();
        let lib = xbound_cells::CellLibrary::ulp65();
        // Nine cycles of overlapping Xs on every net (paper Fig 10 shape).
        let n = nl.net_count();
        let rows: Vec<Vec<Lv>> = vec![
            vec![Zero; n],
            vec![Zero; n],
            vec![One; n],
            vec![X; n],
            vec![X; n],
            vec![X; n],
            vec![Zero; n],
            vec![Zero; n],
            vec![Zero; n],
        ];
        let tree = single_segment_tree(&nl, &rows);
        for parity in [Parity::Even, Parity::Odd] {
            let asg = assign_parity(&nl, &lib, &tree, parity);
            let (_, frames) = &asg.segments[0];
            // No X left anywhere.
            for (c, f) in frames.iter().enumerate() {
                for i in 0..f.len() {
                    assert!(f.get(i).is_known(), "cycle {c} net {i} still X");
                }
            }
            // Every target-parity cycle whose pair had X on a driven net
            // shows a transition on that net (the forced-toggle rule).
            for c in 1..rows.len() {
                if !parity.matches(c as u64) {
                    continue;
                }
                #[allow(clippy::needless_range_loop)] // indexes three parallel rows
                for i in 0..n {
                    let had_x = rows[c][i] == X || rows[c - 1][i] == X;
                    let driven = nl.driver_of(xbound_netlist::NetId(i as u32)).is_some();
                    if had_x && driven {
                        assert_ne!(
                            frames[c - 1].get(i),
                            frames[c].get(i),
                            "cycle {c} net {i}: X pair must be assigned a toggle"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn x_pairs_take_max_energy_transition() {
        use Lv::X;
        let nl = toy();
        let lib = xbound_cells::CellLibrary::ulp65();
        let n = nl.net_count();
        let rows = vec![vec![X; n], vec![X; n]];
        let tree = single_segment_tree(&nl, &rows);
        let asg = assign_parity(&nl, &lib, &tree, Parity::Odd);
        let (_, frames) = &asg.segments[0];
        for i in 0..n {
            if let Some(g) = nl.driver_of(xbound_netlist::NetId(i as u32)) {
                let (first, second) = lib.power(nl.gate(g).kind()).max_transition();
                assert_eq!(frames[0].get(i), Lv::from_bool(first), "net {i} first");
                assert_eq!(frames[1].get(i), Lv::from_bool(second), "net {i} second");
            }
        }
    }

    #[test]
    fn stability_holds_for_enabled_registers() {
        use Lv::{One, Zero, X};
        let mut r = Rtl::new("t");
        let d = r.input("d", 4);
        let en = r.input_bit("en");
        let (h, q) = r.reg("held", 4);
        r.reg_next_en(h, &d, en);
        r.output("q", &q);
        let nl = r.finish().expect("builds");
        let en_net = nl.find_net("en").expect("net");
        let rstn = nl.find_net("rstn").expect("net");
        let q0 = nl.find_net("top/held_q[0]").expect("net");
        // en = 0 in the earlier frame, reset inactive, q = X in both:
        // held -> stable.
        let mut prev = Frame::new_all_x(nl.net_count());
        prev.set(en_net.index(), Zero);
        prev.set(rstn.index(), One);
        let mut cur = Frame::new_all_x(nl.net_count());
        cur.set(en_net.index(), One);
        cur.set(rstn.index(), One);
        let st = stability(&nl, &prev, &cur);
        assert!(st[q0.index()], "held register is stable");
        // en = X: not provably held.
        prev.set(en_net.index(), X);
        let st = stability(&nl, &prev, &cur);
        assert!(!st[q0.index()], "unknown enable is not stable");
    }

    #[test]
    fn stability_propagates_through_combinational_cones() {
        use Lv::{One, Zero};
        let nl = toy();
        let a = nl.find_net("a").expect("net");
        let b = nl.find_net("b").expect("net");
        let rstn = nl.find_net("rstn").expect("net");
        // Concrete, equal inputs across the pair: whole cone stable even
        // though the frame values of internal nets are X.
        let mut prev = Frame::new_all_x(nl.net_count());
        prev.set(a.index(), One);
        prev.set(b.index(), Zero);
        prev.set(rstn.index(), One);
        let cur = prev.clone();
        let st = stability(&nl, &prev, &cur);
        for (i, stable) in st.iter().enumerate().take(nl.net_count()) {
            assert!(stable, "net {i} should be stable");
        }
    }

    #[test]
    fn merge_adjusted_frames_joins_child_into_owner() {
        use Lv::{One, Zero};
        let nl = toy();
        let mut tree = ExecutionTree::new();
        let n = nl.net_count();
        let rows: Vec<Vec<Lv>> = vec![vec![Zero; n]; 2];
        let root = {
            let frames: Vec<Frame> = rows.iter().map(|r0| r0.iter().copied().collect()).collect();
            tree.push(Segment {
                parent: None,
                start_cycle: 0,
                frames,
                end: SegmentEnd::Halt, // patched below
            })
        };
        let owner = tree.push(Segment {
            parent: Some((root, ForkChoice::Taken)),
            start_cycle: 2,
            frames: vec![Frame::new(n), Frame::new(n)],
            end: SegmentEnd::Halt,
        });
        let merged_frame = {
            let mut f = Frame::new(n);
            f.set(0, One); // differs from owner's first frame
            f
        };
        let merged = tree.push(Segment {
            parent: Some((root, ForkChoice::NotTaken)),
            start_cycle: 2,
            frames: vec![merged_frame],
            end: SegmentEnd::Merged {
                into: owner,
                at_pc: 0,
                widened: false,
            },
        });
        tree.get_mut(root).end = SegmentEnd::Fork {
            branch_pc: 0,
            taken: owner,
            not_taken: merged,
        };
        let adjusted = merge_adjusted_frames(&tree);
        // Owner's first frame: net 0 joined (0 vs 1 -> X).
        assert_eq!(adjusted[owner.index()][0].get(0), Lv::X);
        // Other nets agree -> unchanged.
        assert_eq!(adjusted[owner.index()][0].get(1), Lv::Zero);
        // Merged child's own frames untouched.
        assert_eq!(adjusted[merged.index()][0].get(0), Lv::One);
    }

    #[test]
    fn peak_energy_value_iteration_on_a_dag() {
        let nl = toy();
        use Lv::Zero;
        let n = nl.net_count();
        let rows = vec![vec![Zero; n]; 4];
        let tree = single_segment_tree(&nl, &rows);
        let lib = xbound_cells::CellLibrary::ulp65();
        let peak = compute_peak_power(&nl, &lib, 1.0e6, &tree);
        let e = compute_peak_energy(&tree, &peak, 1.0e6, 100);
        assert!(e.converged, "single segment converges");
        assert_eq!(e.cycles, 4);
        // All-zero frames: energy is the per-cycle floor times 4 cycles.
        assert!(e.peak_energy_j > 0.0);
    }
}
