//! Algorithm 1: input-independent gate activity analysis.
//!
//! [`SymbolicExplorer`] performs the paper's symbolic simulation: the
//! application binary runs on the gate-level netlist with every input forced
//! to X (unknown). Whenever the next program counter carries X — an
//! input-dependent branch — execution forks on the `branch_taken` control
//! net: one direction is pushed on a stack of unprocessed paths and the
//! other is followed (depth-first). A forked state is **pruned** when an
//! already-explored state at the same program point *covers* it (equal, or
//! X wherever they differ) — re-simulating a covered state cannot enlarge
//! the activity superset. After a fork point has been visited
//! `widen_threshold` times, new states are first **widened** (joined with
//! everything seen there); widening only adds Xs and is therefore
//! conservative, exactly the kind of heuristic the paper's Chapter 6
//! prescribes for scalability.
//!
//! # Parallel exploration
//!
//! Simulating one fork-free run of cycles is a *pure function* of its
//! starting [`MachineState`] (the program image lives in the snapshot's
//! memories, and the simulator applies no other persistent stimulus), so
//! independent execution-tree branches can be simulated speculatively on a
//! worker pool while the main thread **commits results in strict
//! depth-first order**. All order-sensitive bookkeeping — segment
//! numbering, the memoization table, subsumption, widening, statistics —
//! happens only at commit time on the main thread, which makes the tree,
//! the statistics, and every downstream peak-power table **bit-identical
//! at any thread count** (including one). `ExploreConfig::threads`
//! controls the pool; the default resolves via
//! [`crate::par::resolve_threads`].

use crate::tree::{ExecutionTree, ForkChoice, Segment, SegmentEnd, SegmentId};
use crate::AnalysisError;
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use xbound_cpu::Cpu;
use xbound_logic::{Frame, Lv, XWord};
use xbound_msp430::Program;
use xbound_sim::{MachineState, SimError, Simulator};

/// Tunables for the exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Maximum cycles in any one segment before exploration fails
    /// (guards against programs that never halt).
    pub max_segment_cycles: u64,
    /// Maximum total simulated cycles across the tree.
    pub max_total_cycles: u64,
    /// Number of distinct states tolerated at one fork PC before the
    /// widening heuristic merges new states.
    pub widen_threshold: u32,
    /// Reset cycles applied before execution starts.
    pub reset_cycles: u32,
    /// Worker threads for speculative branch exploration. `0` (the
    /// default) resolves via [`crate::par::resolve_threads`]; `1` disables
    /// the pool. Results are identical at any setting.
    pub threads: usize,
}

impl Default for ExploreConfig {
    fn default() -> ExploreConfig {
        ExploreConfig {
            max_segment_cycles: 200_000,
            max_total_cycles: 2_000_000,
            widen_threshold: 4,
            reset_cycles: 2,
            threads: 0,
        }
    }
}

/// Statistics from one exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExploreStats {
    /// Total simulated cycles (committed to the tree; speculative work that
    /// was discarded does not count).
    pub cycles: u64,
    /// Forks encountered.
    pub forks: u64,
    /// States pruned by subsumption.
    pub merges: u64,
    /// States widened by the Chapter-6 heuristic.
    pub widenings: u64,
}

struct PcEntry {
    /// `(state, owning segment)` pairs seen at this program point.
    seen: Vec<(MachineState, SegmentId)>,
    visits: u32,
    widen_join: Option<MachineState>,
}

/// The Algorithm-1 explorer bound to a CPU.
pub struct SymbolicExplorer<'c> {
    cpu: &'c Cpu,
    config: ExploreConfig,
    /// Positions of the PC register bits within the sequential-gate list.
    pc_ff_positions: Vec<usize>,
}

/// One simulated fork direction: the re-simulated branch cycle's frame and
/// the machine state after committing it.
struct ForkDir {
    first_frame: Frame,
    after: MachineState,
    pc_after: Option<u16>,
    cycle_after: u64,
}

/// How a fork-free run ended.
enum PathEnd {
    /// Reached the final self-loop.
    Halt,
    /// Hit the per-segment cycle budget.
    Truncated,
    /// PC went X outside a `branch_taken` fork (or a branch PC was not
    /// concrete).
    Unresolved { cycle: u64, state: String },
    /// Simulator error (bus failed to settle).
    Sim(SimError),
    /// Input-dependent branch; both directions pre-simulated.
    Fork { branch_pc: u16, dirs: Vec<ForkDir> },
    /// A worker panicked; the payload is re-thrown on the main thread.
    Panicked(String),
}

/// The result of simulating one fork-free run: the settled frames (the
/// branch-cycle frame already popped for forks) plus how it ended.
struct PathResult {
    frames: Vec<Frame>,
    end: PathEnd,
}

/// A branch created at a fork but not yet explored.
struct PendingPath {
    seg: SegmentId,
    task: u64,
    state: MachineState,
}

/// Shared state of the speculative worker pool.
struct Pool {
    inner: Mutex<PoolState>,
    cv: Condvar,
}

struct PoolState {
    /// Tasks not yet claimed by any thread: `(task id, start state)`.
    queue: VecDeque<(u64, MachineState)>,
    /// Finished speculative results, by task id.
    results: HashMap<u64, PathResult>,
    shutdown: bool,
}

impl Pool {
    fn new() -> Pool {
        Pool {
            inner: Mutex::new(PoolState {
                queue: VecDeque::new(),
                results: HashMap::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn enqueue(&self, task: u64, state: MachineState) {
        self.inner
            .lock()
            .expect("pool lock")
            .queue
            .push_back((task, state));
        self.cv.notify_all();
    }

    fn shutdown(&self) {
        self.inner.lock().expect("pool lock").shutdown = true;
        self.cv.notify_all();
    }
}

impl<'c> SymbolicExplorer<'c> {
    /// Creates an explorer for the given core.
    pub fn new(cpu: &'c Cpu, config: ExploreConfig) -> SymbolicExplorer<'c> {
        let nl = cpu.netlist();
        let pc_ff_positions = cpu
            .io()
            .pc
            .iter()
            .map(|&net| {
                nl.sequential_gates()
                    .iter()
                    .position(|&g| nl.gate(g).output() == net)
                    .expect("PC bits are flip-flops")
            })
            .collect();
        SymbolicExplorer {
            cpu,
            config,
            pc_ff_positions,
        }
    }

    fn pc_of_state(&self, s: &MachineState) -> XWord {
        let mut w = XWord::ZERO;
        for (i, &pos) in self.pc_ff_positions.iter().enumerate() {
            w.set_bit(i, s.ffs()[pos]);
        }
        w
    }

    fn pc_next_has_x(&self, next: &[Lv]) -> bool {
        self.pc_ff_positions.iter().any(|&p| next[p] == Lv::X)
    }

    /// Simulates one fork-free run from `start` (or from the simulator's
    /// current state when `None`) until halt, fork, or the segment budget.
    ///
    /// This is a pure function of the start state: it touches no explorer
    /// bookkeeping, so it can run speculatively on any thread.
    /// `pre_frames` counts frames the owning segment already holds (the
    /// fork-direction frame of a child segment) against the budget.
    fn simulate_path(
        &self,
        sim: &mut Simulator<'_>,
        start: Option<&MachineState>,
        pre_frames: u64,
    ) -> PathResult {
        if let Some(s) = start {
            sim.set_machine_state(s);
        }
        let bt = self.cpu.io().branch_taken;
        let mut frames: Vec<Frame> = Vec::new();
        loop {
            if pre_frames + frames.len() as u64 >= self.config.max_segment_cycles {
                return PathResult {
                    frames,
                    end: PathEnd::Truncated,
                };
            }
            let frame = match sim.eval() {
                Ok(f) => f.clone(),
                Err(e) => {
                    return PathResult {
                        frames,
                        end: PathEnd::Sim(e),
                    }
                }
            };

            // Halt detection: the DECODE of `jmp $` (0x3FFF).
            let halted = self.cpu.state(sim) == Some(xbound_cpu::State::Decode)
                && self.cpu.ir_word(sim).to_u16() == Some(0x3FFF);
            frames.push(frame);
            if halted {
                return PathResult {
                    frames,
                    end: PathEnd::Halt,
                };
            }

            let next = sim.ff_next_values();
            if !self.pc_next_has_x(&next) {
                sim.commit_with_next(&next);
                continue;
            }

            // --- fork on branch_taken ---
            if sim.value(bt) != Lv::X {
                let st = self
                    .cpu
                    .state(sim)
                    .map(|s| s.name().to_string())
                    .unwrap_or_else(|| "unknown".to_string());
                return PathResult {
                    frames,
                    end: PathEnd::Unresolved {
                        cycle: sim.cycle(),
                        state: st,
                    },
                };
            }
            // Remove the X-branch frame: each child re-simulates the branch
            // cycle with a concrete direction.
            frames.pop();
            let branch_pc = match sim.value_word(&self.cpu.io().pc).to_u16() {
                Some(pc) => pc,
                None => {
                    return PathResult {
                        frames,
                        end: PathEnd::Unresolved {
                            cycle: sim.cycle(),
                            state: "DECODE with unknown branch PC".to_string(),
                        },
                    }
                }
            };
            let base = sim.machine_state();
            let mut dirs = Vec::with_capacity(2);
            for lv in [Lv::One, Lv::Zero] {
                sim.set_machine_state(&base);
                sim.force(bt, Some(lv));
                let first_frame = match sim.eval() {
                    Ok(f) => f.clone(),
                    Err(e) => {
                        sim.force(bt, None);
                        return PathResult {
                            frames,
                            end: PathEnd::Sim(e),
                        };
                    }
                };
                sim.commit();
                sim.force(bt, None);
                let after = sim.machine_state();
                let pc_after = self.pc_of_state(&after).to_u16();
                dirs.push(ForkDir {
                    first_frame,
                    after,
                    pc_after,
                    cycle_after: sim.cycle(),
                });
            }
            return PathResult {
                frames,
                end: PathEnd::Fork { branch_pc, dirs },
            };
        }
    }

    /// A worker-pool simulator prototype: program loaded, reset already
    /// consumed (every speculative task starts from a post-reset snapshot).
    fn proto_sim(&self, program: &Program) -> Simulator<'c> {
        let mut sim = self.cpu.new_sim();
        Cpu::load_program(&mut sim, program, false); // symbolic: memory stays X
        sim.reset(0);
        sim
    }

    /// Runs the exploration; returns the annotated execution tree.
    ///
    /// # Errors
    ///
    /// * [`AnalysisError::UnresolvedPc`] — the PC went X outside a fork on
    ///   `branch_taken` (e.g. a computed jump on unknown data);
    /// * [`AnalysisError::CycleBudget`] — the configured budgets were hit;
    /// * [`AnalysisError::Sim`] — the bus failed to settle.
    pub fn explore(
        &self,
        program: &Program,
    ) -> Result<(ExecutionTree, ExploreStats), AnalysisError> {
        let threads = crate::par::resolve_threads(self.config.threads);
        if threads <= 1 {
            return self.explore_driver(program, None);
        }
        let pool = Pool::new();
        std::thread::scope(|s| {
            for _ in 0..threads - 1 {
                s.spawn(|| self.worker_loop(program, &pool));
            }
            // Shut the pool down even if the driver panics (including the
            // re-throw of a captured worker panic): the scope joins every
            // worker before propagating, and a parked worker only wakes on
            // shutdown — without the guard the join would deadlock.
            struct ShutdownGuard<'p>(&'p Pool);
            impl Drop for ShutdownGuard<'_> {
                fn drop(&mut self) {
                    self.0.shutdown();
                }
            }
            let _guard = ShutdownGuard(&pool);
            self.explore_driver(program, Some(&pool))
        })
    }

    fn worker_loop(&self, program: &Program, pool: &Pool) {
        let mut sim = self.proto_sim(program);
        loop {
            let job = {
                let mut guard = pool.inner.lock().expect("pool lock");
                loop {
                    if guard.shutdown {
                        return;
                    }
                    if let Some(job) = guard.queue.pop_front() {
                        break job;
                    }
                    guard = pool.cv.wait(guard).expect("pool wait");
                }
            };
            let (task, state) = job;
            // A panic inside the gate-level simulator must not strand the
            // main thread in `fetch`; capture it and re-throw at commit.
            let result = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.simulate_path(&mut sim, Some(&state), 1)
            })) {
                Ok(r) => r,
                Err(e) => {
                    let msg = e
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| e.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "worker panicked".to_string());
                    // The simulator may be poisoned mid-eval; rebuild it.
                    sim = self.proto_sim(program);
                    PathResult {
                        frames: Vec::new(),
                        end: PathEnd::Panicked(msg),
                    }
                }
            };
            let mut guard = pool.inner.lock().expect("pool lock");
            guard.results.insert(task, result);
            pool.cv.notify_all();
        }
    }

    /// Obtains the result for a pending path: from the pool if a worker
    /// (has) finished it, inline on the main thread's simulator otherwise.
    fn fetch(&self, pool: Option<&Pool>, sim: &mut Simulator<'_>, p: &PendingPath) -> PathResult {
        let Some(pool) = pool else {
            return self.simulate_path(sim, Some(&p.state), 1);
        };
        let mut guard = pool.inner.lock().expect("pool lock");
        loop {
            if let Some(r) = guard.results.remove(&p.task) {
                return r;
            }
            if let Some(pos) = guard.queue.iter().position(|(id, _)| *id == p.task) {
                // Not yet claimed by a worker: steal it and run inline.
                guard.queue.remove(pos);
                drop(guard);
                return self.simulate_path(sim, Some(&p.state), 1);
            }
            // In flight on a worker; wait for it.
            guard = pool.cv.wait(guard).expect("pool wait");
        }
    }

    /// The deterministic commit loop: depth-first order, exactly the
    /// sequential algorithm, with path simulation delegated to
    /// [`SymbolicExplorer::simulate_path`] (inline or speculative).
    fn explore_driver(
        &self,
        program: &Program,
        pool: Option<&Pool>,
    ) -> Result<(ExecutionTree, ExploreStats), AnalysisError> {
        let mut sim = self.cpu.new_sim();
        Cpu::load_program(&mut sim, program, false); // symbolic: memory stays X
        sim.reset(self.config.reset_cycles);

        let mut tree = ExecutionTree::new();
        let mut stats = ExploreStats::default();
        let mut pc_table: HashMap<u16, PcEntry> = HashMap::new();
        let mut stack: Vec<PendingPath> = Vec::new();
        let mut next_task: u64 = 0;

        let root = tree.push(Segment {
            parent: None,
            start_cycle: 0,
            frames: Vec::new(),
            end: SegmentEnd::Halt, // patched when the segment actually ends
        });
        let mut current = root;
        // Root starts from the simulator's power-on state.
        let mut result = self.simulate_path(&mut sim, None, 0);

        loop {
            // Commit `result` into segment `current`.
            stats.cycles += result.frames.len() as u64;
            tree.get_mut(current).frames.append(&mut result.frames);
            match result.end {
                PathEnd::Halt => tree.get_mut(current).end = SegmentEnd::Halt,
                PathEnd::Truncated => {
                    tree.get_mut(current).end = SegmentEnd::Truncated;
                    return Err(AnalysisError::CycleBudget {
                        cycles: stats.cycles,
                    });
                }
                PathEnd::Unresolved { cycle, state } => {
                    return Err(AnalysisError::UnresolvedPc { cycle, state });
                }
                PathEnd::Sim(e) => return Err(AnalysisError::Sim(e)),
                PathEnd::Panicked(msg) => panic!("explorer worker panicked: {msg}"),
                PathEnd::Fork { branch_pc, dirs } => {
                    stats.forks += 1;
                    let branch_frame_cycle = {
                        let seg = tree.segment(current);
                        seg.start_cycle + seg.frames.len() as u64
                    };
                    let mut children: [Option<SegmentId>; 2] = [None, None];
                    for (slot, (dir, choice)) in dirs
                        .into_iter()
                        .zip([ForkChoice::Taken, ForkChoice::NotTaken])
                        .enumerate()
                    {
                        stats.cycles += 1;
                        let child = tree.push(Segment {
                            parent: Some((current, choice)),
                            start_cycle: branch_frame_cycle,
                            frames: vec![dir.first_frame],
                            end: SegmentEnd::Halt, // patched
                        });
                        children[slot] = Some(child);

                        // Memoization is keyed by the *post-branch* PC
                        // (branch + direction) so that widening never joins
                        // the two directions of one branch (which would X
                        // the PC).
                        let pc_after = dir.pc_after.ok_or(AnalysisError::UnresolvedPc {
                            cycle: dir.cycle_after,
                            state: "post-branch PC not concrete".to_string(),
                        })?;
                        let entry = pc_table.entry(pc_after).or_insert_with(|| PcEntry {
                            seen: Vec::new(),
                            visits: 0,
                            widen_join: None,
                        });
                        entry.visits += 1;

                        // Subsumption check.
                        if let Some((_, owner)) =
                            entry.seen.iter().find(|(s, _)| s.covers(&dir.after))
                        {
                            stats.merges += 1;
                            tree.get_mut(child).end = SegmentEnd::Merged {
                                into: *owner,
                                at_pc: pc_after,
                                widened: false,
                            };
                            continue;
                        }
                        let state_to_push = if entry.visits > self.config.widen_threshold {
                            // Widen: join with everything seen at this PC.
                            stats.widenings += 1;
                            let mut w = dir.after.clone();
                            if let Some(j) = &entry.widen_join {
                                w.join_in_place(j);
                            }
                            for (s, _) in &entry.seen {
                                w.join_in_place(s);
                            }
                            entry.widen_join = Some(w.clone());
                            if let Some((_, owner)) = entry.seen.iter().find(|(s, _)| s.covers(&w))
                            {
                                stats.merges += 1;
                                tree.get_mut(child).end = SegmentEnd::Merged {
                                    into: *owner,
                                    at_pc: pc_after,
                                    widened: true,
                                };
                                continue;
                            }
                            w
                        } else {
                            dir.after
                        };
                        entry.seen.push((state_to_push.clone(), child));
                        let task = next_task;
                        next_task += 1;
                        if let Some(pool) = pool {
                            pool.enqueue(task, state_to_push.clone());
                        }
                        stack.push(PendingPath {
                            seg: child,
                            task,
                            state: state_to_push,
                        });
                    }
                    tree.get_mut(current).end = SegmentEnd::Fork {
                        branch_pc,
                        taken: children[0].expect("taken child"),
                        not_taken: children[1].expect("not-taken child"),
                    };
                }
            }

            // Global budget: enforced at segment granularity.
            if stats.cycles >= self.config.max_total_cycles {
                if let Some(p) = stack.pop() {
                    tree.get_mut(p.seg).end = SegmentEnd::Truncated;
                }
                return Err(AnalysisError::CycleBudget {
                    cycles: stats.cycles,
                });
            }

            // Pop the next unexplored path (depth-first).
            match stack.pop() {
                None => break,
                Some(p) => {
                    result = self.fetch(pool, &mut sim, &p);
                    current = p.seg;
                }
            }
        }
        Ok((tree, stats))
    }
}
