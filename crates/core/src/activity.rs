//! Algorithm 1: input-independent gate activity analysis.
//!
//! [`SymbolicExplorer`] performs the paper's symbolic simulation: the
//! application binary runs on the gate-level netlist with every input forced
//! to X (unknown). Whenever the next program counter carries X — an
//! input-dependent branch — execution forks on the `branch_taken` control
//! net: one direction is pushed on a stack of unprocessed paths and the
//! other is followed (depth-first). A forked state is **pruned** when an
//! already-explored state at the same program point *covers* it (equal, or
//! X wherever they differ) — re-simulating a covered state cannot enlarge
//! the activity superset. After a fork point has been visited
//! `widen_threshold` times, new states are first **widened** (joined with
//! everything seen there); widening only adds Xs and is therefore
//! conservative, exactly the kind of heuristic the paper's Chapter 6
//! prescribes for scalability.

use crate::tree::{ExecutionTree, ForkChoice, Segment, SegmentEnd, SegmentId};
use crate::AnalysisError;
use std::collections::HashMap;
use xbound_cpu::Cpu;
use xbound_logic::{Lv, XWord};
use xbound_msp430::Program;
use xbound_sim::MachineState;

/// Tunables for the exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Maximum cycles in any one segment before exploration fails
    /// (guards against programs that never halt).
    pub max_segment_cycles: u64,
    /// Maximum total simulated cycles across the tree.
    pub max_total_cycles: u64,
    /// Number of distinct states tolerated at one fork PC before the
    /// widening heuristic merges new states.
    pub widen_threshold: u32,
    /// Reset cycles applied before execution starts.
    pub reset_cycles: u32,
}

impl Default for ExploreConfig {
    fn default() -> ExploreConfig {
        ExploreConfig {
            max_segment_cycles: 200_000,
            max_total_cycles: 2_000_000,
            widen_threshold: 4,
            reset_cycles: 2,
        }
    }
}

/// Statistics from one exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExploreStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Forks encountered.
    pub forks: u64,
    /// States pruned by subsumption.
    pub merges: u64,
    /// States widened by the Chapter-6 heuristic.
    pub widenings: u64,
}

struct PcEntry {
    /// `(state, owning segment)` pairs seen at this program point.
    seen: Vec<(MachineState, SegmentId)>,
    visits: u32,
    widen_join: Option<MachineState>,
}

/// The Algorithm-1 explorer bound to a CPU.
pub struct SymbolicExplorer<'c> {
    cpu: &'c Cpu,
    config: ExploreConfig,
    /// Positions of the PC register bits within the sequential-gate list.
    pc_ff_positions: Vec<usize>,
}

struct PendingPath {
    seg: SegmentId,
    state: MachineState,
}

impl<'c> SymbolicExplorer<'c> {
    /// Creates an explorer for the given core.
    pub fn new(cpu: &'c Cpu, config: ExploreConfig) -> SymbolicExplorer<'c> {
        let nl = cpu.netlist();
        let pc_ff_positions = cpu
            .io()
            .pc
            .iter()
            .map(|&net| {
                nl.sequential_gates()
                    .iter()
                    .position(|&g| nl.gate(g).output() == net)
                    .expect("PC bits are flip-flops")
            })
            .collect();
        SymbolicExplorer {
            cpu,
            config,
            pc_ff_positions,
        }
    }

    fn pc_of_state(&self, s: &MachineState) -> XWord {
        let mut w = XWord::ZERO;
        for (i, &pos) in self.pc_ff_positions.iter().enumerate() {
            w.set_bit(i, s.ffs()[pos]);
        }
        w
    }

    fn pc_next_has_x(&self, next: &[Lv]) -> bool {
        self.pc_ff_positions.iter().any(|&p| next[p] == Lv::X)
    }

    /// Runs the exploration; returns the annotated execution tree.
    ///
    /// # Errors
    ///
    /// * [`AnalysisError::UnresolvedPc`] — the PC went X outside a fork on
    ///   `branch_taken` (e.g. a computed jump on unknown data);
    /// * [`AnalysisError::CycleBudget`] — the configured budgets were hit;
    /// * [`AnalysisError::Sim`] — the bus failed to settle.
    pub fn explore(
        &self,
        program: &Program,
    ) -> Result<(ExecutionTree, ExploreStats), AnalysisError> {
        let mut sim = self.cpu.new_sim();
        Cpu::load_program(&mut sim, program, false); // symbolic: memory stays X
        sim.reset(self.config.reset_cycles);

        let mut tree = ExecutionTree::new();
        let mut stats = ExploreStats::default();
        let mut pc_table: HashMap<u16, PcEntry> = HashMap::new();

        let root = tree.push(Segment {
            parent: None,
            start_cycle: 0,
            frames: Vec::new(),
            end: SegmentEnd::Halt, // patched when the segment actually ends
        });
        let mut stack: Vec<PendingPath> = Vec::new();
        let mut current = root;
        // Root starts from the simulator's power-on state.
        let bt = self.cpu.io().branch_taken;

        'paths: loop {
            // Explore `current` until halt / fork / budget.
            loop {
                if tree.segment(current).frames.len() as u64 >= self.config.max_segment_cycles
                    || stats.cycles >= self.config.max_total_cycles
                {
                    tree.get_mut(current).end = SegmentEnd::Truncated;
                    return Err(AnalysisError::CycleBudget {
                        cycles: stats.cycles,
                    });
                }
                let frame = sim.eval().map_err(AnalysisError::Sim)?.clone();
                stats.cycles += 1;

                // Halt detection: the DECODE of `jmp $` (0x3FFF).
                let halted = self.cpu.state(&sim) == Some(xbound_cpu::State::Decode)
                    && self.cpu.ir_word(&sim).to_u16() == Some(0x3FFF);
                tree.get_mut(current).frames.push(frame);
                if halted {
                    tree.get_mut(current).end = SegmentEnd::Halt;
                    break;
                }

                let next = sim.ff_next_values();
                if !self.pc_next_has_x(&next) {
                    sim.commit();
                    continue;
                }

                // --- fork on branch_taken ---
                if sim.value(bt) != Lv::X {
                    let st = self
                        .cpu
                        .state(&sim)
                        .map(|s| s.name().to_string())
                        .unwrap_or_else(|| "unknown".to_string());
                    return Err(AnalysisError::UnresolvedPc {
                        cycle: sim.cycle(),
                        state: st,
                    });
                }
                stats.forks += 1;
                // Remove the X-branch frame: each child re-simulates the
                // branch cycle with a concrete direction.
                let branch_frame_cycle = {
                    let seg = tree.get_mut(current);
                    seg.frames.pop();
                    stats.cycles -= 1;
                    seg.start_cycle + seg.frames.len() as u64
                };
                let branch_pc = {
                    let pcw = sim.value_word(&self.cpu.io().pc);
                    pcw.to_u16().ok_or(AnalysisError::UnresolvedPc {
                        cycle: sim.cycle(),
                        state: "DECODE with unknown branch PC".to_string(),
                    })?
                };
                let base = sim.machine_state();
                let mut children: [Option<SegmentId>; 2] = [None, None];
                for (slot, (choice, lv)) in [
                    (ForkChoice::Taken, Lv::One),
                    (ForkChoice::NotTaken, Lv::Zero),
                ]
                .into_iter()
                .enumerate()
                {
                    sim.set_machine_state(&base);
                    sim.force(bt, Some(lv));
                    let child_frame = sim.eval().map_err(AnalysisError::Sim)?.clone();
                    sim.commit();
                    sim.force(bt, None);
                    let after = sim.machine_state();
                    stats.cycles += 1;

                    let child = tree.push(Segment {
                        parent: Some((current, choice)),
                        start_cycle: branch_frame_cycle,
                        frames: vec![child_frame],
                        end: SegmentEnd::Halt, // patched
                    });
                    children[slot] = Some(child);

                    // Memoization is keyed by the *post-branch* PC (branch +
                    // direction) so that widening never joins the two
                    // directions of one branch (which would X the PC).
                    let pc_after =
                        self.pc_of_state(&after)
                            .to_u16()
                            .ok_or(AnalysisError::UnresolvedPc {
                                cycle: sim.cycle(),
                                state: "post-branch PC not concrete".to_string(),
                            })?;
                    let entry = pc_table.entry(pc_after).or_insert_with(|| PcEntry {
                        seen: Vec::new(),
                        visits: 0,
                        widen_join: None,
                    });
                    entry.visits += 1;

                    // Subsumption check.
                    if let Some((_, owner)) = entry.seen.iter().find(|(s, _)| s.covers(&after)) {
                        stats.merges += 1;
                        tree.get_mut(child).end = SegmentEnd::Merged {
                            into: *owner,
                            at_pc: pc_after,
                            widened: false,
                        };
                        continue;
                    }
                    let state_to_push = if entry.visits > self.config.widen_threshold {
                        // Widen: join with everything seen at this PC.
                        stats.widenings += 1;
                        let mut w = after.clone();
                        if let Some(j) = &entry.widen_join {
                            w.join_in_place(j);
                        }
                        for (s, _) in &entry.seen {
                            w.join_in_place(s);
                        }
                        entry.widen_join = Some(w.clone());
                        if let Some((_, owner)) = entry.seen.iter().find(|(s, _)| s.covers(&w)) {
                            stats.merges += 1;
                            tree.get_mut(child).end = SegmentEnd::Merged {
                                into: *owner,
                                at_pc: pc_after,
                                widened: true,
                            };
                            continue;
                        }
                        w
                    } else {
                        after.clone()
                    };
                    entry.seen.push((state_to_push.clone(), child));
                    stack.push(PendingPath {
                        seg: child,
                        state: state_to_push,
                    });
                }
                tree.get_mut(current).end = SegmentEnd::Fork {
                    branch_pc,
                    taken: children[0].expect("taken child"),
                    not_taken: children[1].expect("not-taken child"),
                };
                break;
            }

            // Pop the next unexplored path (depth-first).
            match stack.pop() {
                None => break 'paths,
                Some(p) => {
                    sim.set_machine_state(&p.state);
                    current = p.seg;
                }
            }
        }
        Ok((tree, stats))
    }
}
