//! Algorithm 1: input-independent gate activity analysis.
//!
//! [`SymbolicExplorer`] performs the paper's symbolic simulation: the
//! application binary runs on the gate-level netlist with every input forced
//! to X (unknown). Whenever the next program counter carries X — an
//! input-dependent branch — execution forks on the `branch_taken` control
//! net: one direction is pushed on a stack of unprocessed paths and the
//! other is followed (depth-first). A forked state is **pruned** when an
//! already-explored state at the same program point *covers* it (equal, or
//! X wherever they differ) — re-simulating a covered state cannot enlarge
//! the activity superset. After a fork point has been visited
//! `widen_threshold` times, new states are first **widened** (joined with
//! everything seen there); widening only adds Xs and is therefore
//! conservative, exactly the kind of heuristic the paper's Chapter 6
//! prescribes for scalability.
//!
//! # Batched exploration
//!
//! Simulating one fork-free run of cycles is a *pure function* of its
//! starting [`MachineState`] (the program image lives in the snapshot's
//! memories, and the simulator applies no other persistent stimulus), so
//! independent execution-tree branches can be simulated in any grouping.
//! The internal `PathRunner` packs up to [`ExploreConfig::lanes`] pending
//! branches of the DFS frontier into the lanes of one lane-generic engine
//! ([`xbound_sim::BatchSimulator`]): every gate pass settles all in-flight
//! branches at once, each lane loading its branch's machine state
//! ([`xbound_sim::Engine::set_lane_machine_state`]) and terminating
//! independently (halt / fork / cycle cap). A lane that hits a fork spends
//! two further lock-step passes re-simulating the branch cycle with
//! `branch_taken` forced per lane ([`xbound_sim::Engine::force_lane`]) —
//! one per direction — while sibling lanes keep running.
//!
//! # Work-stealing parallel exploration and determinism
//!
//! A pool of speculative workers (threads resolved via
//! [`crate::par::resolve_threads`], like every other pool in the
//! workspace) runs those batches concurrently under a **work-stealing
//! region scheduler**: each worker owns a deque
//! ([`crate::par::StealDeque`]) of pending DFS branches, pushes the forks
//! it discovers locally (LIFO, so it keeps riding the cache-warm subtree
//! it just simulated), and — when dry — steals the *oldest* entries from
//! a victim's front: the shallowest-forked region in that deque, whose
//! subtree is the largest, so one steal amortizes a whole `PathRunner`
//! batch fill. A shared injector deque (queue 0) receives the branches
//! the driver seeds at fork commits; victims are probed injector-first,
//! then ring order ([`crate::par::victim_order`]). Workers **self-expand**:
//! a speculatively simulated fork immediately becomes two new local
//! branches without waiting for any commit, which is what keeps deep
//! skinny trees (tHold, binSearch) from starving everyone behind the hot
//! spine.
//!
//! The main thread still **commits results in strict depth-first order**.
//! All order-sensitive bookkeeping — segment numbering, the memoization
//! table, subsumption, widening, statistics — happens only at commit time
//! on the main thread; finished speculative paths park in an out-of-order
//! completion buffer keyed by their full starting [`MachineState`] and
//! bounded by [`ExploreConfig::speculation_window`]. Since simulating a
//! fork-free run is a pure function of its starting state, each branch's
//! simulated path is the same whatever thread, batch, or steal brought it
//! home, which makes the tree, the deterministic statistics, and every
//! downstream peak-power table **bit-identical at any
//! `(threads, lanes, steal order)` setting** (including `(1, 1)`, the
//! historical scalar explorer). Subtree memoization short-circuits on
//! both sides of the scheduler — the driver stitches verified replays
//! into the local cache without ever seeding a task, and workers replay
//! hits straight into the completion buffer instead of simulating.
//! Speculation the commit loop retroactively invalidates (a widening or
//! merge prunes the subtree a worker already expanded) is swept by a
//! mark-and-sweep purge over the buffer and deques; a panic on such a
//! never-committed branch is discarded with it, exactly as a
//! single-threaded run would never have simulated that branch at all.
//! Only the [`BatchExploreStats`] telemetry (gate passes, lane occupancy,
//! steal counters, speculative waste) depends on how branches happened to
//! be scheduled.

use crate::memo::{self, SubtreeMemo};
use crate::tree::{ExecutionTree, ForkChoice, Segment, SegmentEnd, SegmentId};
use crate::AnalysisError;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use xbound_cpu::Cpu;
use xbound_logic::{BatchFrame, Frame, LaneVal, Lv, XWord};
use xbound_msp430::Program;
use xbound_obs::{metrics, trace};
use xbound_sim::{BatchSimulator, MachineState, MemRead, MemWrite, SimError};

/// Global observability mirrors of the explorer's scheduling telemetry.
///
/// The deterministic stats pipeline ([`ExploreStats`]) stays the source
/// of truth; these registry counters are fed once per exploration from
/// the aggregated [`BatchExploreStats`] (never from the hot loop), so
/// the metrics layer costs nothing per gate pass and cannot perturb the
/// byte-identity contract.
struct ExploreMetrics {
    explorations: metrics::Counter,
    gate_passes: metrics::Counter,
    committed_cycles: metrics::Counter,
    steals: metrics::Counter,
    steal_failures: metrics::Counter,
    idle_wakeups: metrics::Counter,
    explore_us: metrics::Histogram,
}

fn explore_metrics() -> &'static ExploreMetrics {
    static M: std::sync::OnceLock<ExploreMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| ExploreMetrics {
        explorations: metrics::counter("xbound_explore_runs_total"),
        gate_passes: metrics::counter("xbound_explore_gate_passes_total"),
        committed_cycles: metrics::counter("xbound_explore_committed_cycles_total"),
        steals: metrics::counter("xbound_explore_steals_total"),
        steal_failures: metrics::counter("xbound_explore_steal_failures_total"),
        idle_wakeups: metrics::counter("xbound_explore_idle_wakeups_total"),
        explore_us: metrics::histogram("xbound_explore_duration_us"),
    })
}

/// Tunables for the exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Maximum cycles in any one segment before exploration fails
    /// (guards against programs that never halt).
    pub max_segment_cycles: u64,
    /// Maximum total simulated cycles across the tree.
    pub max_total_cycles: u64,
    /// Number of distinct states tolerated at one fork PC before the
    /// widening heuristic merges new states.
    pub widen_threshold: u32,
    /// Reset cycles applied before execution starts.
    pub reset_cycles: u32,
    /// Worker threads for speculative branch exploration. `0` (the
    /// default) resolves via [`crate::par::resolve_threads`]; `1` disables
    /// the pool. Results are identical at any setting.
    pub threads: usize,
    /// Lane width for batched path simulation: how many pending
    /// execution-tree branches share one gate pass. `0` (the default)
    /// resolves via [`crate::par::resolve_explore_lanes`]
    /// (`XBOUND_EXPLORE_LANES`). Results are identical at any setting.
    pub lanes: usize,
    /// Bound on the work-stealing pool's out-of-order completion buffer:
    /// how many speculative branch results (buffered or in flight) may
    /// exist beyond the committed DFS frontier. `0` (the default)
    /// resolves via [`crate::par::resolve_speculation_window`]
    /// (`XBOUND_SPECULATION_WINDOW`). Results are identical at any
    /// setting; the knob only caps speculative memory and wasted work.
    /// Irrelevant at `threads <= 1` (no pool).
    pub speculation_window: usize,
    /// Test-only: seeds the victim-selection shuffle of the work-stealing
    /// pool ([`crate::par::victim_order`]) so invariance tests can drive
    /// many distinct steal interleavings reproducibly. `0` (the default)
    /// is the production ring order. Results are identical at any seed.
    #[doc(hidden)]
    pub steal_seed: u64,
    /// Test-only: when non-zero, whichever pool participant claims a
    /// branch forked at exactly this depth panics — exercises the
    /// panic-context plumbing (segment id, thief/victim worker ids).
    /// Ignored at `threads <= 1` (no pool).
    #[doc(hidden)]
    pub test_panic_depth: u64,
}

impl Default for ExploreConfig {
    fn default() -> ExploreConfig {
        ExploreConfig {
            max_segment_cycles: 200_000,
            max_total_cycles: 2_000_000,
            widen_threshold: 4,
            reset_cycles: 2,
            threads: 0,
            lanes: 0,
            speculation_window: 0,
            steal_seed: 0,
            test_panic_depth: 0,
        }
    }
}

impl ExploreConfig {
    /// The benchmark-suite configuration shared by every full-suite
    /// driver (`suite_summary`, the experiment harness, the co-analysis
    /// service): the default knobs with the cycle budget raised to cover
    /// the largest paper benchmarks. Callers layer the per-benchmark
    /// `widen_threshold` on top.
    pub fn suite_default() -> ExploreConfig {
        ExploreConfig {
            max_total_cycles: 5_000_000,
            ..ExploreConfig::default()
        }
    }
}

/// Batched-exploration telemetry: lane occupancy, steal scheduling, and
/// speculative waste.
///
/// Unlike the deterministic fields of [`ExploreStats`], these counters
/// describe **how** the work was scheduled, not what was explored: they
/// vary with the lane width and (for everything except
/// `active_lane_cycles`) with worker timing and steal interleavings at
/// `threads > 1`. They are excluded from the bit-identity guarantee and
/// from [`ExploreStats`] equality semantics used in differential tests
/// (compare [`ExploreStats::deterministic`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BatchExploreStats {
    /// Resolved lane width used for path simulation.
    pub lanes: u64,
    /// Global engine passes (one eval + commit across all lanes).
    pub gate_passes: u64,
    /// Lane-cycles spent on in-flight branches (deterministic: the sum of
    /// every branch's simulated path length, including fork re-simulation).
    pub active_lane_cycles: u64,
    /// Lane-cycles where a lane was empty or already finished while the
    /// batch kept stepping — the speculative-waste counter.
    pub idle_lane_cycles: u64,
    /// Successful steals: a worker claimed a batch from a deque it does
    /// not own (the driver-seeded injector counts as victim 0).
    pub steals: u64,
    /// Victim probes that found an empty deque.
    pub steal_failures: u64,
    /// Times an idle or window-blocked worker woke up to re-check for
    /// work or buffer space.
    pub idle_wakeups: u64,
    /// Deepest fork depth a worker simulated ahead of the committed DFS
    /// frontier (how far speculation ran past the driver).
    pub max_speculation_depth: u64,
    /// Cycles committed to the tree per producing thread: index 0 is the
    /// driver, index `w` the `w`-th speculative worker. Length is the
    /// resolved thread count.
    pub committed_cycles_per_worker: Vec<u64>,
}

impl BatchExploreStats {
    /// Mean fraction of lanes doing useful work per gate pass (1.0 =
    /// perfectly packed; 0.0 when nothing ran batched).
    pub fn occupancy(&self) -> f64 {
        let total = self.active_lane_cycles + self.idle_lane_cycles;
        if total == 0 {
            return 0.0;
        }
        self.active_lane_cycles as f64 / total as f64
    }

    /// Folds another telemetry block into this one: counters add,
    /// `max_speculation_depth` takes the max, per-worker commit counts
    /// add elementwise (the longer vector wins the length). `lanes` is
    /// left alone — it is a configuration echo, not a counter.
    pub fn absorb(&mut self, other: &BatchExploreStats) {
        self.gate_passes += other.gate_passes;
        self.active_lane_cycles += other.active_lane_cycles;
        self.idle_lane_cycles += other.idle_lane_cycles;
        self.steals += other.steals;
        self.steal_failures += other.steal_failures;
        self.idle_wakeups += other.idle_wakeups;
        self.max_speculation_depth = self.max_speculation_depth.max(other.max_speculation_depth);
        if self.committed_cycles_per_worker.len() < other.committed_cycles_per_worker.len() {
            self.committed_cycles_per_worker
                .resize(other.committed_cycles_per_worker.len(), 0);
        }
        for (a, b) in self
            .committed_cycles_per_worker
            .iter_mut()
            .zip(&other.committed_cycles_per_worker)
        {
            *a += b;
        }
    }
}

/// Statistics from one exploration.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExploreStats {
    /// Total simulated cycles (committed to the tree; speculative work that
    /// was discarded does not count).
    pub cycles: u64,
    /// Forks encountered.
    pub forks: u64,
    /// States pruned by subsumption.
    pub merges: u64,
    /// States widened by the Chapter-6 heuristic.
    pub widenings: u64,
    /// Batched-exploration telemetry (scheduling-dependent; see
    /// [`BatchExploreStats`]).
    pub batch: BatchExploreStats,
}

impl ExploreStats {
    /// The deterministic core of the statistics — `(cycles, forks, merges,
    /// widenings)` — bit-identical at any `(threads, lanes)` setting.
    /// [`ExploreStats::batch`] is scheduling telemetry and is excluded.
    pub fn deterministic(&self) -> (u64, u64, u64, u64) {
        (self.cycles, self.forks, self.merges, self.widenings)
    }
}

struct PcEntry {
    /// `(state, owning segment)` pairs seen at this program point.
    seen: Vec<(MachineState, SegmentId)>,
    visits: u32,
    widen_join: Option<MachineState>,
}

/// The Algorithm-1 explorer bound to a CPU.
pub struct SymbolicExplorer<'c> {
    cpu: &'c Cpu,
    config: ExploreConfig,
    /// Positions of the PC register bits within the sequential-gate list.
    pc_ff_positions: Vec<usize>,
    /// Subtree memo store plus its pre-computed context hash, when
    /// incremental re-analysis is enabled.
    memo: Option<(Arc<SubtreeMemo>, u64)>,
}

/// One simulated fork direction: the re-simulated branch cycle's frame and
/// the machine state after committing it.
struct ForkDir {
    first_frame: Frame,
    after: MachineState,
    pc_after: Option<u16>,
    cycle_after: u64,
    /// Every memory word written on the path through this direction's
    /// branch cycle — the complete after-state delta for memoization
    /// (empty when footprint logging is off).
    written: Vec<(u16, u32)>,
}

/// How a fork-free run ended.
enum PathEnd {
    /// Reached the final self-loop.
    Halt,
    /// Hit the per-segment cycle budget.
    Truncated,
    /// PC went X outside a `branch_taken` fork (or a branch PC was not
    /// concrete).
    Unresolved { cycle: u64, state: String },
    /// Simulator error (bus failed to settle). A settle error poisons the
    /// whole batch: every in-flight branch reports it (exploration aborts
    /// with [`AnalysisError::Sim`] regardless of which branch is committed
    /// first).
    Sim(SimError),
    /// Input-dependent branch; both directions pre-simulated.
    Fork { branch_pc: u16, dirs: Vec<ForkDir> },
    /// The claiming thread panicked; the payload is re-thrown on the main
    /// thread with the failing branch's segment id plus the claim
    /// provenance (`thief` simulated it, from `victim`'s deque; 0 = the
    /// driver / the injector).
    Panicked {
        msg: String,
        thief: usize,
        victim: usize,
    },
}

/// The result of simulating one fork-free run: the settled frames (the
/// branch-cycle frame already popped for forks) plus how it ended.
struct PathResult {
    frames: Vec<Frame>,
    end: PathEnd,
    /// Read footprint for memoization — every `(region, offset, value)`
    /// the run consulted before writing it itself. `Some` only for
    /// freshly simulated paths with footprint logging on; memo replays
    /// carry `None` so they are never re-recorded.
    reads: Option<Vec<(u16, u32, XWord)>>,
}

/// A branch created at a fork but not yet explored.
struct PendingPath {
    seg: SegmentId,
    task: u64,
    /// Completion-buffer key of `state`, pre-computed at push (all zeros
    /// when exploring without a pool).
    key: SpecKey,
    /// Fork depth from the root.
    depth: u64,
    state: MachineState,
}

/// One unit of path-simulation work: the branch's start state (`None` =
/// the engine's current power-on state — the root path).
struct BatchTask {
    start: Option<MachineState>,
    pre_frames: u64,
}

/// What a lane is doing within one batched run.
enum LanePhase {
    /// No task (or its task already finished).
    Idle,
    /// Normal fork-free path simulation.
    Run,
    /// Re-simulating the branch cycle of a detected fork with
    /// `branch_taken` forced in this lane; `dir` indexes
    /// `[Taken, NotTaken]`.
    ForkDir { dir: usize },
}

/// Who a lane is working for.
enum LaneJob {
    /// Unoccupied.
    None,
    /// A task the caller asked for; the index is the result slot.
    Requested(usize),
}

/// Per-lane read-footprint bookkeeping for memoization: the first value
/// read from every memory word the path did not write first, plus the
/// written set itself. Fork re-simulation runs both directions off one
/// base state, so the written set is snapshotted when the fork is
/// detected and rolled back between directions; footprint reads are
/// never rolled back (a read that happened is a dependency regardless of
/// which direction issued it, and both directions observe start-state
/// values for words the rolled-back set no longer covers).
#[derive(Default)]
struct LaneFootprint {
    on: bool,
    reads: HashMap<(u16, u32), XWord>,
    written: HashSet<(u16, u32)>,
    fork_base: Option<HashSet<(u16, u32)>>,
}

impl LaneFootprint {
    fn active() -> LaneFootprint {
        LaneFootprint {
            on: true,
            ..LaneFootprint::default()
        }
    }

    fn read(&mut self, r: u16, o: u32, v: XWord) {
        if self.on && !self.written.contains(&(r, o)) {
            self.reads.entry((r, o)).or_insert(v);
        }
    }

    fn write(&mut self, r: u16, o: u32) {
        if self.on {
            self.written.insert((r, o));
        }
    }

    fn fork_snapshot(&mut self) {
        if self.on {
            self.fork_base = Some(self.written.clone());
        }
    }

    fn fork_rollback(&mut self) {
        if let Some(base) = &self.fork_base {
            self.written = base.clone();
        }
    }

    /// The current written set (sorted later, at record time).
    fn written_vec(&self) -> Vec<(u16, u32)> {
        self.written.iter().copied().collect()
    }

    /// Drains the footprint for the finished path's [`PathResult`].
    fn finish(&mut self) -> Option<Vec<(u16, u32, XWord)>> {
        self.on
            .then(|| self.reads.drain().map(|((r, o), v)| (r, o, v)).collect())
    }
}

/// Per-lane bookkeeping of one in-flight task.
struct LaneRun {
    job: LaneJob,
    phase: LanePhase,
    pre_frames: u64,
    /// The lane's own cycle timeline: `start_cycle + steps` is what a
    /// scalar simulator's cycle counter would read (the engine's global
    /// counter advances every lane at once and is meaningless per lane).
    start_cycle: u64,
    steps: u64,
    frames: Vec<Frame>,
    branch_pc: u16,
    base: Option<MachineState>,
    /// The forced branch-cycle frame of the direction in flight (captured
    /// at eval; the matching after-state needs the commit).
    pending_first: Option<Frame>,
    dirs: Vec<ForkDir>,
    foot: LaneFootprint,
}

impl LaneRun {
    fn idle() -> LaneRun {
        LaneRun {
            job: LaneJob::None,
            phase: LanePhase::Idle,
            pre_frames: 0,
            start_cycle: 0,
            steps: 0,
            frames: Vec::new(),
            branch_pc: 0,
            base: None,
            pending_first: None,
            dirs: Vec::new(),
            foot: LaneFootprint::default(),
        }
    }

    fn start(job: LaneJob, pre_frames: u64, start_cycle: u64) -> LaneRun {
        LaneRun {
            job,
            phase: LanePhase::Run,
            pre_frames,
            start_cycle,
            ..LaneRun::idle()
        }
    }

    fn cycle(&self) -> u64 {
        self.start_cycle + self.steps
    }
}

/// A deferred engine mutation applied after the global commit of a pass
/// (restoring a lane mid-pass would be overwritten by the commit).
enum PostCommit {
    /// Enter (or continue) fork re-simulation: restore the fork base into
    /// the lane and force `branch_taken` to `dir`'s value there.
    StartDir { lane: usize, dir: usize },
    /// Snapshot the committed direction state, then either start the next
    /// direction or finish the fork.
    FinishDir { lane: usize, dir: usize },
}

/// Batched path simulation over one lane-generic engine.
///
/// The runner owns the engine plus the incremental per-lane scalar frame
/// reconstruction (only nets whose batch word changed since the previous
/// pass are rewritten, exactly like the batched concrete profiler).
struct PathRunner<'c> {
    sim: BatchSimulator<'c>,
    prev: Option<BatchFrame>,
    cur_lane: Vec<Frame>,
    change_buf: Vec<u32>,
    stats: BatchExploreStats,
    /// Footprint logging for memoization (mirrors the engine's
    /// mem-access logging flag).
    log_mem: bool,
    read_buf: Vec<MemRead>,
    write_buf: Vec<MemWrite>,
}

impl<'c> PathRunner<'c> {
    /// A runner whose engine has the program image loaded (symbolic:
    /// memory stays X) and `reset_cycles` of reset scheduled. Workers pass
    /// 0 (every speculative task starts from a post-reset snapshot); the
    /// driver passes the configured reset for the root path. `log_mem`
    /// turns on per-lane read/write footprint capture for memoization.
    fn new(
        cpu: &'c Cpu,
        program: &Program,
        lanes: usize,
        reset_cycles: u32,
        log_mem: bool,
    ) -> PathRunner<'c> {
        let mut sim = cpu.new_batch_sim(lanes);
        Cpu::load_program_batch(&mut sim, program, false);
        sim.reset(reset_cycles);
        sim.set_change_logging(true);
        sim.set_mem_access_logging(log_mem);
        PathRunner {
            sim,
            prev: None,
            cur_lane: Vec::new(),
            change_buf: Vec::new(),
            stats: BatchExploreStats {
                lanes: lanes as u64,
                ..BatchExploreStats::default()
            },
            log_mem,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
        }
    }

    /// Attributes engine-logged memory reads to their lanes' footprints.
    fn drain_reads(&mut self, runs: &mut [LaneRun]) {
        if !self.log_mem {
            return;
        }
        self.sim.swap_mem_reads(&mut self.read_buf);
        for ev in self.read_buf.drain(..) {
            runs[ev.lane as usize]
                .foot
                .read(ev.region, ev.offset, ev.value);
        }
    }

    /// Attributes commit-time events. Reads first: a joined write logs
    /// the word's prior value as a read *before* its own write lands in
    /// the written set, so a word first touched by this very commit still
    /// reports the value it had at path start.
    fn drain_commit(&mut self, runs: &mut [LaneRun]) {
        if !self.log_mem {
            return;
        }
        self.drain_reads(runs);
        self.sim.swap_mem_writes(&mut self.write_buf);
        for ev in self.write_buf.drain(..) {
            runs[ev.lane as usize].foot.write(ev.region, ev.offset);
        }
    }

    /// Clears pending engine logs without attributing them, so an
    /// aborted batch cannot leak events into the next one.
    fn discard_mem_log(&mut self) {
        if !self.log_mem {
            return;
        }
        self.sim.swap_mem_reads(&mut self.read_buf);
        self.read_buf.clear();
        self.sim.swap_mem_writes(&mut self.write_buf);
        self.write_buf.clear();
    }

    /// Refreshes the per-lane scalar frames from the settled batch frame:
    /// only nets the engine logged as changed since the previous refresh
    /// are rewritten (O(changed nets), not O(design)).
    fn refresh_lane_frames(&mut self) {
        self.sim.swap_change_log(&mut self.change_buf);
        let bf = self.sim.frame();
        match &mut self.prev {
            None => {
                self.cur_lane = (0..self.sim.lanes()).map(|l| bf.lane_frame(l)).collect();
                self.prev = Some(bf.clone());
            }
            Some(prev) => {
                for &i in &self.change_buf {
                    let i = i as usize;
                    let p = prev.get(i);
                    let q = bf.get(i);
                    let mut changed = (p.val ^ q.val) | (p.unk ^ q.unk);
                    while changed != 0 {
                        let l = changed.trailing_zeros() as usize;
                        self.cur_lane[l].set(i, q.get(l));
                        changed &= changed - 1;
                    }
                    prev.set(i, q);
                }
            }
        }
        self.change_buf.clear();
    }

    /// Simulates every task to completion in lock-step lanes and returns
    /// one [`PathResult`] per task, in task order.
    ///
    /// Per lane and per task this replays the historical scalar
    /// `simulate_path` loop exactly — budget check, eval, halt test, frame
    /// record, PC-X test, fork handling — so each task's result is
    /// bit-identical to a 1-lane run regardless of its batch-mates.
    fn run_batch(&mut self, x: &SymbolicExplorer<'_>, tasks: Vec<BatchTask>) -> Vec<PathResult> {
        let lanes = self.sim.lanes();
        assert!(!tasks.is_empty() && tasks.len() <= lanes, "task/lane shape");
        let bt = x.cpu.io().branch_taken;
        let mut runs: Vec<LaneRun> = (0..lanes).map(|_| LaneRun::idle()).collect();
        let mut requested_out: Vec<Option<PathResult>> = Vec::new();
        let mut requested_active = tasks.len();
        for (l, t) in tasks.into_iter().enumerate() {
            let start_cycle = match &t.start {
                Some(s) => {
                    self.sim.set_lane_machine_state(l, s);
                    s.cycle()
                }
                None => self.sim.cycle(),
            };
            let slot = requested_out.len();
            requested_out.push(None);
            runs[l] = LaneRun::start(LaneJob::Requested(slot), t.pre_frames, start_cycle);
            if self.log_mem {
                runs[l].foot = LaneFootprint::active();
            }
        }

        /// Moves a finished lane's result out and frees the lane.
        fn finish(
            run: &mut LaneRun,
            end: PathEnd,
            requested_out: &mut [Option<PathResult>],
            requested_active: &mut usize,
        ) {
            let mut done = std::mem::replace(run, LaneRun::idle());
            let result = PathResult {
                frames: done.frames,
                end,
                reads: done.foot.finish(),
            };
            match done.job {
                LaneJob::None => unreachable!("finished an unoccupied lane"),
                LaneJob::Requested(slot) => {
                    requested_out[slot] = Some(result);
                    *requested_active -= 1;
                }
            }
        }

        loop {
            // Per-segment budget: checked before eval, like the scalar loop.
            for run in runs.iter_mut() {
                if matches!(run.phase, LanePhase::Run)
                    && run.pre_frames + run.frames.len() as u64 >= x.config.max_segment_cycles
                {
                    finish(
                        run,
                        PathEnd::Truncated,
                        &mut requested_out,
                        &mut requested_active,
                    );
                }
            }
            let active = runs
                .iter()
                .filter(|r| !matches!(r.phase, LanePhase::Idle))
                .count();
            if active == 0 || requested_active == 0 {
                break;
            }

            if let Err(e) = self.sim.settle() {
                for (l, run) in runs.iter_mut().enumerate() {
                    // A lane caught mid-fork still holds its per-lane
                    // `branch_taken` force; release it before the engine
                    // is reused for the next batch.
                    if matches!(run.phase, LanePhase::ForkDir { .. }) {
                        self.sim.force_lane(bt, l, None);
                    }
                    if !matches!(run.phase, LanePhase::Idle) {
                        finish(
                            run,
                            PathEnd::Sim(e.clone()),
                            &mut requested_out,
                            &mut requested_active,
                        );
                    }
                }
                self.discard_mem_log();
                break;
            }
            self.stats.gate_passes += 1;
            self.stats.active_lane_cycles += active as u64;
            self.stats.idle_lane_cycles += (lanes - active) as u64;
            self.refresh_lane_frames();
            self.drain_reads(&mut runs);
            let next = self.sim.ff_next_lanes();

            // Pre-commit lane processing. Only lanes that take this pass's
            // clock edge land in `commit_mask`; everything else is frozen
            // by the masked commit (finished lanes stop costing dirty
            // work, and a fork-detecting lane holds its pre-branch state
            // exactly like the scalar explorer, which never committed the
            // X-branch cycle).
            let mut commit_mask: u64 = 0;
            let mut post: Vec<PostCommit> = Vec::new();
            for (l, run) in runs.iter_mut().enumerate() {
                match run.phase {
                    LanePhase::Idle => {}
                    LanePhase::Run => {
                        let halted = x.cpu.state_lane(&self.sim, l)
                            == Some(xbound_cpu::State::Decode)
                            && x.cpu.ir_word_lane(&self.sim, l).to_u16() == Some(0x3FFF);
                        run.frames.push(self.cur_lane[l].clone());
                        if halted {
                            finish(
                                run,
                                PathEnd::Halt,
                                &mut requested_out,
                                &mut requested_active,
                            );
                            continue;
                        }
                        if !x.pc_next_has_x_lane(&next, l) {
                            run.steps += 1; // the upcoming commit is this lane's edge
                            commit_mask |= 1 << l;
                            continue;
                        }
                        // --- fork on branch_taken ---
                        if self.sim.value_lane(bt, l) != Lv::X {
                            let st = x
                                .cpu
                                .state_lane(&self.sim, l)
                                .map(|s| s.name().to_string())
                                .unwrap_or_else(|| "unknown".to_string());
                            let end = PathEnd::Unresolved {
                                cycle: run.cycle(),
                                state: st,
                            };
                            finish(run, end, &mut requested_out, &mut requested_active);
                            continue;
                        }
                        // Remove the X-branch frame: each direction
                        // re-simulates the branch cycle concretely.
                        run.frames.pop();
                        let branch_pc = match self.sim.value_word_lane(&x.cpu.io().pc, l).to_u16() {
                            Some(pc) => pc,
                            None => {
                                let end = PathEnd::Unresolved {
                                    cycle: run.cycle(),
                                    state: "DECODE with unknown branch PC".to_string(),
                                };
                                finish(run, end, &mut requested_out, &mut requested_active);
                                continue;
                            }
                        };
                        run.branch_pc = branch_pc;
                        run.base = Some(self.sim.lane_machine_state_at(l, run.cycle()));
                        run.foot.fork_snapshot();
                        post.push(PostCommit::StartDir { lane: l, dir: 0 });
                    }
                    LanePhase::ForkDir { dir } => {
                        // The settled frame is this direction's forced
                        // branch cycle; the after-state needs the commit.
                        run.pending_first = Some(self.cur_lane[l].clone());
                        commit_mask |= 1 << l;
                        post.push(PostCommit::FinishDir { lane: l, dir });
                    }
                }
            }

            self.sim.commit_with_next_masked(&next, commit_mask);
            self.drain_commit(&mut runs);

            for action in post {
                match action {
                    PostCommit::StartDir { lane, dir } => {
                        // The fork lane was excluded from the commit, so it
                        // already holds the base state — only the direction
                        // force is needed.
                        let run = &mut runs[lane];
                        self.sim
                            .force_lane(bt, lane, Some([Lv::One, Lv::Zero][dir]));
                        run.phase = LanePhase::ForkDir { dir };
                    }
                    PostCommit::FinishDir { lane, dir } => {
                        let run = &mut runs[lane];
                        let cycle_after = run.base.as_ref().expect("fork base").cycle() + 1;
                        let after = self.sim.lane_machine_state_at(lane, cycle_after);
                        run.dirs.push(ForkDir {
                            first_frame: run.pending_first.take().expect("direction in flight"),
                            pc_after: x.pc_of_state(&after).to_u16(),
                            after,
                            cycle_after,
                            written: run.foot.written_vec(),
                        });
                        if dir == 0 {
                            let base = run.base.as_ref().expect("fork base");
                            // The state restore bypasses write logging, so
                            // roll the written set back by hand: direction 1
                            // starts from the pre-fork memory again.
                            run.foot.fork_rollback();
                            self.sim.set_lane_machine_state(lane, base);
                            self.sim.force_lane(bt, lane, Some(Lv::Zero));
                            run.phase = LanePhase::ForkDir { dir: 1 };
                        } else {
                            self.sim.force_lane(bt, lane, None);
                            let end = PathEnd::Fork {
                                branch_pc: run.branch_pc,
                                dirs: std::mem::take(&mut run.dirs),
                            };
                            finish(run, end, &mut requested_out, &mut requested_active);
                        }
                    }
                }
            }
        }

        // Every exit path releases per-lane fork forces (fork completion
        // and the settle-error sweep above); a leaked force would corrupt
        // the next batch simulated on this engine.
        debug_assert!(
            runs.iter().all(|r| matches!(r.phase, LanePhase::Idle)),
            "batch ended with a lane still in flight"
        );

        requested_out
            .into_iter()
            .map(|r| r.expect("every requested task finished"))
            .collect()
    }
}

/// Completion-buffer key of a speculative branch: the starting state's
/// content hash plus its cycle. Claims always verify full
/// [`MachineState`] equality on top, so a (vanishingly unlikely) hash
/// collision degrades to an inline re-simulation, never a wrong result.
type SpecKey = (u64, u64);

fn spec_key(s: &MachineState) -> SpecKey {
    (s.content_hash(), s.cycle())
}

/// One speculative unit of work: an unexplored execution-tree branch.
struct SpecTask {
    key: SpecKey,
    /// Fork depth from the root (steal telemetry + the test panic hook).
    depth: u64,
    state: MachineState,
}

impl SpecTask {
    fn new(state: MachineState, depth: u64) -> SpecTask {
        SpecTask {
            key: spec_key(&state),
            depth,
            state,
        }
    }
}

/// A finished speculative path parked in the completion buffer.
struct SpecDone {
    /// Full starting state, for the collision check at claim time.
    state: MachineState,
    result: PathResult,
    /// Which thread simulated it (0 = the driver).
    worker: usize,
}

/// A branch currently inside some thread's `run_batch` call (the full
/// state backs the collision check when the driver decides to wait).
struct Inflight {
    state: MachineState,
}

/// The synchronized part of the work-stealing pool: the out-of-order
/// completion buffer plus in-flight claims. Deques live outside this lock
/// (one mutex each) so owner pushes don't serialize against the board.
struct WsBoard {
    results: HashMap<SpecKey, SpecDone>,
    inflight: HashMap<SpecKey, Inflight>,
    /// Bumped on every deque push; parked workers re-probe when it moves
    /// (the lost-wakeup guard: pushes happen outside the board lock).
    work_epoch: u64,
    shutdown: bool,
}

/// Shared state of the work-stealing explorer pool.
struct WsPool {
    /// `queues[0]` is the injector (branches the driver seeds at fork
    /// commits); `queues[w]` is worker `w`'s own deque.
    queues: Vec<crate::par::StealDeque<SpecTask>>,
    board: Mutex<WsBoard>,
    /// Signals a newly buffered result (the driver waits here).
    result_ready: Condvar,
    /// Signals queued work or freed buffer space (workers wait here).
    work_ready: Condvar,
    /// Completion-buffer bound: buffered + in-flight branches. Soft — each
    /// participant may overshoot by the batch it is finishing.
    window: usize,
    steal_seed: u64,
    /// Fork depth of the driver's committed frontier (the baseline for
    /// `max_speculation_depth`).
    committed_depth: AtomicU64,
    gate_passes: AtomicU64,
    active_lane_cycles: AtomicU64,
    idle_lane_cycles: AtomicU64,
    steals: AtomicU64,
    steal_failures: AtomicU64,
    idle_wakeups: AtomicU64,
    max_speculation_depth: AtomicU64,
}

impl WsPool {
    fn new(threads: usize, window: usize, steal_seed: u64) -> WsPool {
        WsPool {
            queues: (0..threads)
                .map(|_| crate::par::StealDeque::new())
                .collect(),
            board: Mutex::new(WsBoard {
                results: HashMap::new(),
                inflight: HashMap::new(),
                work_epoch: 0,
                shutdown: false,
            }),
            result_ready: Condvar::new(),
            work_ready: Condvar::new(),
            window,
            steal_seed,
            committed_depth: AtomicU64::new(0),
            gate_passes: AtomicU64::new(0),
            active_lane_cycles: AtomicU64::new(0),
            idle_lane_cycles: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            steal_failures: AtomicU64::new(0),
            idle_wakeups: AtomicU64::new(0),
            max_speculation_depth: AtomicU64::new(0),
        }
    }

    fn shutdown(&self) {
        self.board.lock().expect("board lock").shutdown = true;
        self.result_ready.notify_all();
        self.work_ready.notify_all();
    }

    /// Seeds the injector with a fork child the driver just committed —
    /// unless speculation already produced, claimed, or queued it.
    fn seed(&self, task: SpecTask) {
        {
            let board = self.board.lock().expect("board lock");
            if board.results.contains_key(&task.key) || board.inflight.contains_key(&task.key) {
                return;
            }
        }
        if self.queues.iter().any(|q| q.any(|t| t.key == task.key)) {
            return;
        }
        self.queues[0].push_back(task);
        self.board.lock().expect("board lock").work_epoch += 1;
        self.work_ready.notify_all();
    }

    /// Records how far past the committed frontier a claim speculates.
    fn note_depth(&self, depth: u64) {
        let ahead = depth.saturating_sub(self.committed_depth.load(Ordering::Relaxed));
        self.max_speculation_depth
            .fetch_max(ahead, Ordering::Relaxed);
    }

    /// Sweeps speculation a widening/merge commit just orphaned: anything
    /// unreachable from the pending stack through buffered fork edges will
    /// never be fetched. In-flight batches can't be cancelled; their
    /// results are swept by a later purge (or die with the pool). Skipped
    /// while the buffer is under half the window — marking costs one state
    /// hash per buffered fork edge.
    fn purge(&self, stack: &[PendingPath]) {
        let mut board = self.board.lock().expect("board lock");
        if board.results.len() + board.inflight.len() < self.window / 2 {
            return;
        }
        let mut keep: HashSet<SpecKey> = stack.iter().map(|p| p.key).collect();
        let mut frontier: Vec<SpecKey> = keep.iter().copied().collect();
        while let Some(k) = frontier.pop() {
            if let Some(done) = board.results.get(&k) {
                if let PathEnd::Fork { dirs, .. } = &done.result.end {
                    for d in dirs {
                        let ck = spec_key(&d.after);
                        if keep.insert(ck) {
                            frontier.push(ck);
                        }
                    }
                }
            }
        }
        board.results.retain(|k, _| keep.contains(k));
        drop(board);
        for q in &self.queues {
            q.retain(|t| keep.contains(&t.key));
        }
        self.work_ready.notify_all();
    }

    fn absorb(&self, stats: &BatchExploreStats) {
        self.gate_passes
            .fetch_add(stats.gate_passes, Ordering::Relaxed);
        self.active_lane_cycles
            .fetch_add(stats.active_lane_cycles, Ordering::Relaxed);
        self.idle_lane_cycles
            .fetch_add(stats.idle_lane_cycles, Ordering::Relaxed);
    }

    fn drain_stats(&self) -> BatchExploreStats {
        BatchExploreStats {
            lanes: 0,
            gate_passes: self.gate_passes.load(Ordering::Relaxed),
            active_lane_cycles: self.active_lane_cycles.load(Ordering::Relaxed),
            idle_lane_cycles: self.idle_lane_cycles.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            steal_failures: self.steal_failures.load(Ordering::Relaxed),
            idle_wakeups: self.idle_wakeups.load(Ordering::Relaxed),
            max_speculation_depth: self.max_speculation_depth.load(Ordering::Relaxed),
            committed_cycles_per_worker: Vec::new(),
        }
    }
}

impl<'c> SymbolicExplorer<'c> {
    /// Creates an explorer for the given core.
    pub fn new(cpu: &'c Cpu, config: ExploreConfig) -> SymbolicExplorer<'c> {
        let nl = cpu.netlist();
        let pc_ff_positions = cpu
            .io()
            .pc
            .iter()
            .map(|&net| {
                nl.sequential_gates()
                    .iter()
                    .position(|&g| nl.gate(g).output() == net)
                    .expect("PC bits are flip-flops")
            })
            .collect();
        SymbolicExplorer {
            cpu,
            config,
            pc_ff_positions,
            memo: None,
        }
    }

    /// Attaches a subtree memo store (with its pre-computed
    /// [`crate::memo::context_hash`]): verified entries are replayed and
    /// stitched into the tree instead of re-simulated, and every freshly
    /// simulated halting or forking path is recorded. The commit loop is
    /// unchanged, so results stay byte-identical to a memo-less run.
    pub fn with_memo(mut self, store: Arc<SubtreeMemo>, ctx: u64) -> SymbolicExplorer<'c> {
        self.memo = Some((store, ctx));
        self
    }

    /// Looks `state` up in the memo (when attached) and rebuilds the
    /// [`PathResult`] exactly as simulation would have produced it.
    fn memo_replay(&self, pre_frames: u64, state: &MachineState) -> Option<PathResult> {
        let (store, ctx) = self.memo.as_ref()?;
        let replayed = store.lookup(*ctx, pre_frames, state)?;
        let frame_count = replayed.frames.len() as u64;
        let end = match replayed.end {
            memo::ReplayedEnd::Halt => PathEnd::Halt,
            memo::ReplayedEnd::Fork { branch_pc, dirs } => PathEnd::Fork {
                branch_pc,
                dirs: dirs
                    .into_iter()
                    .map(|(first_frame, after)| ForkDir {
                        pc_after: self.pc_of_state(&after).to_u16(),
                        cycle_after: state.cycle() + frame_count + 1,
                        first_frame,
                        after,
                        written: Vec::new(),
                    })
                    .collect(),
            },
        };
        Some(PathResult {
            frames: replayed.frames,
            end,
            reads: None,
        })
    }

    /// Memoizes a committed path. Only halting and forking ends are
    /// recorded; replayed results carry no footprint and are skipped.
    fn memo_record(&self, pre_frames: u64, start: &MachineState, result: &PathResult) {
        let Some((store, ctx)) = self.memo.as_ref() else {
            return;
        };
        let Some(reads) = &result.reads else {
            return;
        };
        let outcome = match &result.end {
            PathEnd::Halt => memo::PathOutcome::Halt,
            PathEnd::Fork { branch_pc, dirs } => memo::PathOutcome::Fork {
                branch_pc: *branch_pc,
                dirs: dirs
                    .iter()
                    .map(|d| memo::RecordedDir {
                        first_frame: &d.first_frame,
                        after: &d.after,
                        written: &d.written,
                    })
                    .collect(),
            },
            _ => return,
        };
        store.record(*ctx, pre_frames, start, &result.frames, reads, outcome);
    }

    fn pc_of_state(&self, s: &MachineState) -> XWord {
        let mut w = XWord::ZERO;
        for (i, &pos) in self.pc_ff_positions.iter().enumerate() {
            w.set_bit(i, s.ffs()[pos]);
        }
        w
    }

    fn pc_next_has_x_lane(&self, next: &[LaneVal], lane: usize) -> bool {
        self.pc_ff_positions
            .iter()
            .any(|&p| next[p].get(lane) == Lv::X)
    }

    /// Runs the exploration; returns the annotated execution tree.
    ///
    /// # Errors
    ///
    /// * [`AnalysisError::UnresolvedPc`] — the PC went X outside a fork on
    ///   `branch_taken` (e.g. a computed jump on unknown data);
    /// * [`AnalysisError::CycleBudget`] — the configured budgets were hit;
    /// * [`AnalysisError::Sim`] — the bus failed to settle.
    pub fn explore(
        &self,
        program: &Program,
    ) -> Result<(ExecutionTree, ExploreStats), AnalysisError> {
        let m = explore_metrics();
        m.explorations.inc();
        let t0 = std::time::Instant::now();
        let r = self.explore_pooled(program);
        m.explore_us.observe_us(t0.elapsed().as_micros() as u64);
        r
    }

    /// [`Self::explore`] behind the metrics funnel: resolves the pool
    /// shape and runs the commit loop, inline or against a worker pool.
    fn explore_pooled(
        &self,
        program: &Program,
    ) -> Result<(ExecutionTree, ExploreStats), AnalysisError> {
        let threads = crate::par::resolve_threads(self.config.threads);
        let lanes = crate::par::resolve_explore_lanes(self.config.lanes);
        let _span = trace::span_args("explore", || {
            vec![
                ("threads".to_string(), threads.to_string()),
                ("lanes".to_string(), lanes.to_string()),
            ]
        });
        if threads <= 1 {
            return self.explore_driver(program, None, lanes);
        }
        let window =
            crate::par::resolve_speculation_window(self.config.speculation_window, threads, lanes);
        let pool = WsPool::new(threads, window, self.config.steal_seed);
        std::thread::scope(|s| {
            for w in 1..threads {
                let pool = &pool;
                s.spawn(move || self.ws_worker_loop(program, pool, lanes, w));
            }
            // Shut the pool down even if the driver panics (including the
            // re-throw of a captured worker panic): the scope joins every
            // worker before propagating, and a parked worker only wakes on
            // shutdown — without the guard the join would deadlock.
            struct ShutdownGuard<'p>(&'p WsPool);
            impl Drop for ShutdownGuard<'_> {
                fn drop(&mut self) {
                    self.0.shutdown();
                }
            }
            let _guard = ShutdownGuard(&pool);
            self.explore_driver(program, Some(&pool), lanes)
        })
    }

    /// Test-only panic injection ([`ExploreConfig::test_panic_depth`]):
    /// fires in whichever thread claims a branch forked at the configured
    /// depth, so the panic surfaces with claim provenance however the
    /// speculation race resolves.
    fn ws_test_panic(&self, depths: impl IntoIterator<Item = u64>) {
        let d = self.config.test_panic_depth;
        if d > 0 && depths.into_iter().any(|x| x == d) {
            panic!("test-injected panic at fork depth {d}");
        }
    }

    /// One speculative worker: claims branches — own deque back (LIFO,
    /// cache-warm), else stealing from a victim's front (the oldest,
    /// shallowest-forked region) — simulates them as one `PathRunner`
    /// batch, buffers the results, and immediately self-expands any forks
    /// into new local work without waiting for a commit.
    fn ws_worker_loop(&self, program: &Program, pool: &WsPool, lanes: usize, me: usize) {
        if trace::enabled() {
            trace::set_thread_label(&format!("explore-worker-{me}"));
        }
        let log_mem = self.memo.is_some();
        let mut runner = PathRunner::new(self.cpu, program, lanes, 0, log_mem);
        let mut round: u64 = 0;
        loop {
            // Window gate: no new speculation while the completion buffer
            // (plus in-flight batches) is at capacity.
            {
                let mut board = pool.board.lock().expect("board lock");
                loop {
                    if board.shutdown {
                        return;
                    }
                    if board.results.len() + board.inflight.len() < pool.window {
                        break;
                    }
                    board = pool.work_ready.wait(board).expect("board wait");
                    pool.idle_wakeups.fetch_add(1, Ordering::Relaxed);
                }
            }
            // Claim: own deque first, then steal.
            round += 1;
            let mut victim = me;
            let mut batch = pool.queues[me].pop_back_batch(lanes);
            if batch.is_empty() {
                for v in crate::par::victim_order(me, pool.queues.len(), pool.steal_seed, round) {
                    let got = pool.queues[v].steal_front(lanes);
                    if got.is_empty() {
                        pool.steal_failures.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    pool.steals.fetch_add(1, Ordering::Relaxed);
                    trace::instant_args("steal", || {
                        vec![
                            ("victim".to_string(), v.to_string()),
                            ("branches".to_string(), got.len().to_string()),
                        ]
                    });
                    victim = v;
                    batch = got;
                    break;
                }
            }
            if batch.is_empty() {
                // Nothing anywhere: park until the work epoch moves.
                let mut board = pool.board.lock().expect("board lock");
                let seen = board.work_epoch;
                while board.work_epoch == seen && !board.shutdown {
                    board = pool.work_ready.wait(board).expect("board wait");
                }
                if board.shutdown {
                    return;
                }
                drop(board);
                pool.idle_wakeups.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            // Mark in flight, dropping branches another participant
            // already produced or started (duplicate speculation).
            let mut tasks: Vec<SpecTask> = Vec::with_capacity(batch.len());
            {
                let mut board = pool.board.lock().expect("board lock");
                for t in batch {
                    if board.results.contains_key(&t.key) || board.inflight.contains_key(&t.key) {
                        continue;
                    }
                    board.inflight.insert(
                        t.key,
                        Inflight {
                            state: t.state.clone(),
                        },
                    );
                    tasks.push(t);
                }
            }
            if tasks.is_empty() {
                continue;
            }
            // Memo hits short-circuit before any lane simulates: replay
            // straight into the buffer, keep only the misses.
            let mut done: Vec<(SpecTask, PathResult)> = Vec::new();
            let mut misses: Vec<SpecTask> = Vec::new();
            for t in tasks {
                match self.memo_replay(1, &t.state) {
                    Some(r) => done.push((t, r)),
                    None => misses.push(t),
                }
            }
            if !misses.is_empty() {
                for t in &misses {
                    pool.note_depth(t.depth);
                }
                let batch_tasks: Vec<BatchTask> = misses
                    .iter()
                    .map(|t| BatchTask {
                        start: Some(t.state.clone()),
                        pre_frames: 1,
                    })
                    .collect();
                // A panic inside the gate-level simulator must not strand
                // the driver in `fetch`; capture it and re-throw at commit
                // (labeled with segment + claim provenance there). If the
                // commit loop never needs the branch, the panic dies with
                // the discarded speculation — a single-threaded run would
                // never have simulated that branch at all.
                let batch_span = trace::span_args("explore_batch", || {
                    vec![
                        ("branches".to_string(), misses.len().to_string()),
                        ("victim".to_string(), victim.to_string()),
                    ]
                });
                let results = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.ws_test_panic(misses.iter().map(|t| t.depth));
                    runner.run_batch(self, batch_tasks)
                })) {
                    Ok(r) => r,
                    Err(e) => {
                        let msg = crate::par::payload_message(e.as_ref());
                        // The engine may be poisoned mid-eval; rebuild it.
                        runner = PathRunner::new(self.cpu, program, lanes, 0, log_mem);
                        misses
                            .iter()
                            .map(|_| PathResult {
                                frames: Vec::new(),
                                end: PathEnd::Panicked {
                                    msg: msg.clone(),
                                    thief: me,
                                    victim,
                                },
                                reads: None,
                            })
                            .collect()
                    }
                };
                drop(batch_span);
                pool.absorb(&runner.stats);
                runner.stats = BatchExploreStats::default();
                done.extend(misses.into_iter().zip(results));
            }
            self.ws_publish(pool, me, done);
        }
    }

    /// Buffers finished speculative results and self-expands their forks:
    /// memo hits are replayed and buffered on the spot (their forks expand
    /// too), misses go onto the worker's own deque — Taken below NotTaken,
    /// so the owner's LIFO pops match the driver's DFS order. The window
    /// gate bounds the expansion: once the buffer or the deque is
    /// saturated, remaining branches are dropped (the driver re-simulates
    /// inline whatever speculation never covered).
    fn ws_publish(&self, pool: &WsPool, me: usize, done: Vec<(SpecTask, PathResult)>) {
        let mut worklist: Vec<SpecTask> = Vec::new();
        let expand = |worklist: &mut Vec<SpecTask>, end: &PathEnd, depth: u64| {
            if let PathEnd::Fork { dirs, .. } = end {
                for d in dirs.iter().rev() {
                    worklist.push(SpecTask::new(d.after.clone(), depth + 1));
                }
            }
        };
        {
            let mut board = pool.board.lock().expect("board lock");
            for (task, result) in done {
                board.inflight.remove(&task.key);
                expand(&mut worklist, &result.end, task.depth);
                board.results.entry(task.key).or_insert(SpecDone {
                    state: task.state,
                    result,
                    worker: me,
                });
            }
        }
        pool.result_ready.notify_all();
        let mut queued = false;
        while let Some(t) = worklist.pop() {
            let window_full = {
                let board = pool.board.lock().expect("board lock");
                if board.results.contains_key(&t.key) || board.inflight.contains_key(&t.key) {
                    continue;
                }
                board.results.len() + board.inflight.len() >= pool.window
            };
            if !window_full {
                if let Some(r) = self.memo_replay(1, &t.state) {
                    expand(&mut worklist, &r.end, t.depth);
                    pool.board
                        .lock()
                        .expect("board lock")
                        .results
                        .entry(t.key)
                        .or_insert(SpecDone {
                            state: t.state,
                            result: r,
                            worker: me,
                        });
                    pool.result_ready.notify_all();
                    continue;
                }
            }
            if pool.queues[me].len() < pool.window {
                pool.queues[me].push_back(t);
                queued = true;
            }
        }
        if queued {
            pool.board.lock().expect("board lock").work_epoch += 1;
            pool.work_ready.notify_all();
        }
    }

    /// Obtains the result for a pending path plus the id of the thread
    /// that produced it (0 = the driver): from the local replay cache,
    /// from the completion buffer (waiting out an in-flight batch if a
    /// worker is simulating it right now), or by pulling the branch off
    /// whichever deque holds it and simulating inline — batched with the
    /// nearest unexplored stack entries speculation has not covered.
    fn fetch(
        &self,
        pool: Option<&WsPool>,
        runner: &mut PathRunner<'c>,
        cache: &mut HashMap<u64, PathResult>,
        stack: &[PendingPath],
        p: &PendingPath,
    ) -> (PathResult, usize) {
        if let Some(r) = cache.remove(&p.task) {
            return (r, 0);
        }
        let lanes = runner.sim.lanes();
        let Some(pool) = pool else {
            // Inline: batch the needed task with the top of the pending
            // stack (the branches DFS will pop next).
            let mut tasks = vec![BatchTask {
                start: Some(p.state.clone()),
                pre_frames: 1,
            }];
            let mut ids = vec![p.task];
            for q in stack.iter().rev() {
                if tasks.len() >= lanes {
                    break;
                }
                if q.task != p.task && !cache.contains_key(&q.task) {
                    tasks.push(BatchTask {
                        start: Some(q.state.clone()),
                        pre_frames: 1,
                    });
                    ids.push(q.task);
                }
            }
            let results = runner.run_batch(self, tasks);
            for (id, r) in ids.into_iter().zip(results) {
                cache.insert(id, r);
            }
            return (cache.remove(&p.task).expect("batched task simulated"), 0);
        };
        // 1. Claim from the completion buffer, waiting out an in-flight
        //    claim (full-state equality guards against key collisions).
        {
            let mut board = pool.board.lock().expect("board lock");
            loop {
                if board
                    .results
                    .get(&p.key)
                    .is_some_and(|d| d.state == p.state)
                {
                    let done = board.results.remove(&p.key).expect("probed above");
                    drop(board);
                    pool.work_ready.notify_all(); // freed window space
                    return (done.result, done.worker);
                }
                if board
                    .inflight
                    .get(&p.key)
                    .is_some_and(|f| f.state == p.state)
                {
                    board = pool.result_ready.wait(board).expect("board wait");
                    continue;
                }
                break;
            }
        }
        // 2. Unclaimed: pull it (if queued anywhere) and simulate inline,
        //    batched with stack-top branches speculation has not covered.
        for q in &pool.queues {
            if q.remove_where(|t| t.key == p.key && t.state == p.state)
                .is_some()
            {
                break;
            }
        }
        let mut tasks = vec![BatchTask {
            start: Some(p.state.clone()),
            pre_frames: 1,
        }];
        let mut ids = vec![p.task];
        let mut extra: Vec<&PendingPath> = Vec::new();
        {
            let board = pool.board.lock().expect("board lock");
            for q in stack.iter().rev() {
                if tasks.len() >= lanes {
                    break;
                }
                if q.task == p.task || cache.contains_key(&q.task) {
                    continue;
                }
                if board.results.contains_key(&q.key) || board.inflight.contains_key(&q.key) {
                    continue;
                }
                tasks.push(BatchTask {
                    start: Some(q.state.clone()),
                    pre_frames: 1,
                });
                ids.push(q.task);
                extra.push(q);
            }
        }
        // The extras ride this inline batch; drop their queued duplicates
        // so no worker re-simulates them.
        for q in extra {
            for dq in &pool.queues {
                if dq
                    .remove_where(|t| t.key == q.key && t.state == q.state)
                    .is_some()
                {
                    break;
                }
            }
        }
        // The same catch-and-label treatment workers get: a panic in the
        // inline batch surfaces at commit with segment context. The
        // runner is never reused after a Panicked commit (it re-throws).
        let results = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.ws_test_panic([p.depth]);
            runner.run_batch(self, tasks)
        })) {
            Ok(r) => r,
            Err(e) => {
                let msg = crate::par::payload_message(e.as_ref());
                ids.iter()
                    .map(|_| PathResult {
                        frames: Vec::new(),
                        end: PathEnd::Panicked {
                            msg: msg.clone(),
                            thief: 0,
                            victim: 0,
                        },
                        reads: None,
                    })
                    .collect()
            }
        };
        for (id, r) in ids.into_iter().zip(results) {
            cache.insert(id, r);
        }
        (cache.remove(&p.task).expect("batched task simulated"), 0)
    }

    /// The deterministic commit loop: depth-first order, exactly the
    /// sequential algorithm, with path simulation delegated to
    /// [`PathRunner::run_batch`] (inline or speculative).
    fn explore_driver(
        &self,
        program: &Program,
        pool: Option<&WsPool>,
        lanes: usize,
    ) -> Result<(ExecutionTree, ExploreStats), AnalysisError> {
        let log_mem = self.memo.is_some();
        let mut runner =
            PathRunner::new(self.cpu, program, lanes, self.config.reset_cycles, log_mem);
        let mut cache: HashMap<u64, PathResult> = HashMap::new();

        let mut tree = ExecutionTree::new();
        let mut stats = ExploreStats {
            batch: BatchExploreStats {
                lanes: lanes as u64,
                ..BatchExploreStats::default()
            },
            ..ExploreStats::default()
        };
        let mut pc_table: HashMap<u16, PcEntry> = HashMap::new();
        let mut stack: Vec<PendingPath> = Vec::new();
        let mut next_task: u64 = 0;
        // Commit attribution: which thread produced the path being
        // committed (0 = driver) and its fork depth.
        let mut per_worker: Vec<u64> = vec![0; pool.map_or(1, |p| p.queues.len())];
        let mut cur_src: usize = 0;
        let mut cur_depth: u64 = 0;

        let root = tree.push(Segment {
            parent: None,
            start_cycle: 0,
            frames: Vec::new(),
            end: SegmentEnd::Halt, // patched when the segment actually ends
        });
        let mut current = root;
        // Root starts from the engine's power-on state (lane 0; the other
        // lanes idle through it and are counted as speculative waste).
        // For memoization it is also a snapshot like any other path start:
        // keyed at budget position 0, footprint-checked like the rest.
        let mut cur_start = if log_mem {
            Some(runner.sim.lane_machine_state_at(0, runner.sim.cycle()))
        } else {
            None
        };
        let mut cur_pre: u64 = 0;
        let mut result = match cur_start.as_ref().and_then(|s| self.memo_replay(0, s)) {
            Some(r) => {
                // The engine never simulated the root, so its scheduled
                // reset is still pending; rebuild it reset-free so inline
                // batches start post-reset exactly like worker engines.
                runner = PathRunner::new(self.cpu, program, lanes, 0, log_mem);
                r
            }
            None => runner
                .run_batch(
                    self,
                    vec![BatchTask {
                        start: None,
                        pre_frames: 0,
                    }],
                )
                .pop()
                .expect("root path simulated"),
        };

        let finish_stats = |mut stats: ExploreStats,
                            runner: &PathRunner<'_>,
                            pool: Option<&WsPool>,
                            per_worker: Vec<u64>| {
            stats.batch.absorb(&runner.stats);
            if let Some(pool) = pool {
                stats.batch.absorb(&pool.drain_stats());
            }
            stats.batch.committed_cycles_per_worker = per_worker;
            // Mirror the run's scheduling telemetry into the global
            // registry — one batched add per exploration, off the hot
            // path, after the deterministic stats are final.
            let m = explore_metrics();
            m.gate_passes.add(stats.batch.gate_passes);
            m.committed_cycles.add(stats.cycles);
            m.steals.add(stats.batch.steals);
            m.steal_failures.add(stats.batch.steal_failures);
            m.idle_wakeups.add(stats.batch.idle_wakeups);
            stats
        };

        loop {
            // Memoize the committed path before its frames move into the
            // tree (replays carry no footprint and are never re-recorded).
            if let Some(start) = &cur_start {
                self.memo_record(cur_pre, start, &result);
            }
            // Commit `result` into segment `current`.
            trace::instant_args("commit", || {
                vec![
                    ("segment".to_string(), current.index().to_string()),
                    ("worker".to_string(), cur_src.to_string()),
                    ("cycles".to_string(), result.frames.len().to_string()),
                ]
            });
            stats.cycles += result.frames.len() as u64;
            per_worker[cur_src] += result.frames.len() as u64;
            tree.get_mut(current).frames.append(&mut result.frames);
            match result.end {
                PathEnd::Halt => tree.get_mut(current).end = SegmentEnd::Halt,
                PathEnd::Truncated => {
                    tree.get_mut(current).end = SegmentEnd::Truncated;
                    return Err(AnalysisError::CycleBudget {
                        cycles: stats.cycles,
                    });
                }
                PathEnd::Unresolved { cycle, state } => {
                    return Err(AnalysisError::UnresolvedPc { cycle, state });
                }
                PathEnd::Sim(e) => return Err(AnalysisError::Sim(e)),
                PathEnd::Panicked { msg, thief, victim } => {
                    panic!(
                        "{}",
                        crate::par::explorer_panic_context(current.index(), thief, victim, &msg)
                    )
                }
                PathEnd::Fork { branch_pc, dirs } => {
                    stats.forks += 1;
                    trace::instant_args("fork", || {
                        vec![
                            ("branch_pc".to_string(), format!("{branch_pc:#06x}")),
                            ("depth".to_string(), cur_depth.to_string()),
                        ]
                    });
                    let mut spec_orphaned = false;
                    let branch_frame_cycle = {
                        let seg = tree.segment(current);
                        seg.start_cycle + seg.frames.len() as u64
                    };
                    let mut children: [Option<SegmentId>; 2] = [None, None];
                    for (slot, (dir, choice)) in dirs
                        .into_iter()
                        .zip([ForkChoice::Taken, ForkChoice::NotTaken])
                        .enumerate()
                    {
                        stats.cycles += 1;
                        per_worker[cur_src] += 1;
                        let child = tree.push(Segment {
                            parent: Some((current, choice)),
                            start_cycle: branch_frame_cycle,
                            frames: vec![dir.first_frame],
                            end: SegmentEnd::Halt, // patched
                        });
                        children[slot] = Some(child);

                        // Memoization is keyed by the *post-branch* PC
                        // (branch + direction) so that widening never joins
                        // the two directions of one branch (which would X
                        // the PC).
                        let pc_after = dir.pc_after.ok_or(AnalysisError::UnresolvedPc {
                            cycle: dir.cycle_after,
                            state: "post-branch PC not concrete".to_string(),
                        })?;
                        let entry = pc_table.entry(pc_after).or_insert_with(|| PcEntry {
                            seen: Vec::new(),
                            visits: 0,
                            widen_join: None,
                        });
                        entry.visits += 1;

                        // Subsumption check.
                        if let Some((_, owner)) =
                            entry.seen.iter().find(|(s, _)| s.covers(&dir.after))
                        {
                            stats.merges += 1;
                            // Speculation rooted at this pruned state is
                            // now garbage.
                            spec_orphaned = true;
                            tree.get_mut(child).end = SegmentEnd::Merged {
                                into: *owner,
                                at_pc: pc_after,
                                widened: false,
                            };
                            continue;
                        }
                        let state_to_push = if entry.visits > self.config.widen_threshold {
                            // Widen: join with everything seen at this PC.
                            // Workers speculated on the un-widened state;
                            // that subtree is now garbage.
                            stats.widenings += 1;
                            spec_orphaned = true;
                            let mut w = dir.after.clone();
                            if let Some(j) = &entry.widen_join {
                                w.join_in_place(j);
                            }
                            for (s, _) in &entry.seen {
                                w.join_in_place(s);
                            }
                            entry.widen_join = Some(w.clone());
                            if let Some((_, owner)) = entry.seen.iter().find(|(s, _)| s.covers(&w))
                            {
                                stats.merges += 1;
                                tree.get_mut(child).end = SegmentEnd::Merged {
                                    into: *owner,
                                    at_pc: pc_after,
                                    widened: true,
                                };
                                continue;
                            }
                            w
                        } else {
                            dir.after
                        };
                        entry.seen.push((state_to_push.clone(), child));
                        let task = next_task;
                        next_task += 1;
                        let child_depth = cur_depth + 1;
                        let key = if pool.is_some() {
                            spec_key(&state_to_push)
                        } else {
                            (0, 0)
                        };
                        // Warm path: a verified memo entry is stitched in
                        // via the local result cache — nothing is queued
                        // and no lane ever simulates this branch.
                        match self.memo_replay(1, &state_to_push) {
                            Some(r) => {
                                cache.insert(task, r);
                            }
                            None => {
                                if let Some(pool) = pool {
                                    pool.seed(SpecTask {
                                        key,
                                        depth: child_depth,
                                        state: state_to_push.clone(),
                                    });
                                }
                            }
                        }
                        stack.push(PendingPath {
                            seg: child,
                            task,
                            key,
                            depth: child_depth,
                            state: state_to_push,
                        });
                    }
                    tree.get_mut(current).end = SegmentEnd::Fork {
                        branch_pc,
                        taken: children[0].expect("taken child"),
                        not_taken: children[1].expect("not-taken child"),
                    };
                    // A merge/widening just orphaned speculative work
                    // rooted at the pruned state; sweep what the stack can
                    // no longer reach.
                    if spec_orphaned {
                        if let Some(pool) = pool {
                            pool.purge(&stack);
                        }
                    }
                }
            }

            // Global budget: enforced at segment granularity.
            if stats.cycles >= self.config.max_total_cycles {
                if let Some(p) = stack.pop() {
                    tree.get_mut(p.seg).end = SegmentEnd::Truncated;
                }
                return Err(AnalysisError::CycleBudget {
                    cycles: stats.cycles,
                });
            }

            // Pop the next unexplored path (depth-first).
            match stack.pop() {
                None => break,
                Some(p) => {
                    if let Some(pl) = pool {
                        pl.committed_depth.store(p.depth, Ordering::Relaxed);
                    }
                    let (r, src) = self.fetch(pool, &mut runner, &mut cache, &stack, &p);
                    result = r;
                    cur_src = src;
                    current = p.seg;
                    cur_depth = p.depth;
                    cur_pre = 1;
                    cur_start = Some(p.state);
                }
            }
        }
        Ok((tree, finish_stats(stats, &runner, pool, per_worker)))
    }
}
