//! Cycles-of-interest (COI) analysis — paper §3.5 / Fig 14.
//!
//! For the cycles where the peak-power bound spikes, reports **which
//! instruction** was in the machine (and in which pipeline phase) and the
//! **per-module power breakdown**, identifying the culprit
//! instruction/module pairs that software optimizations should target.

use crate::peak_power::PeakPowerResult;
use crate::tree::{ExecutionTree, SegmentId};
use xbound_cpu::{Cpu, State};
use xbound_logic::XWord;
use xbound_msp430::isa::{decode, Instr};

/// One cycle of interest.
#[derive(Debug, Clone)]
pub struct CycleOfInterest {
    /// Where in the tree the spike occurs.
    pub segment: SegmentId,
    /// Cycle within the segment.
    pub cycle: usize,
    /// Global cycle index.
    pub global_cycle: u64,
    /// Peak-power bound at this cycle, milliwatts.
    pub power_mw: f64,
    /// FSM phase during the cycle.
    pub state: Option<State>,
    /// The in-flight instruction (decoded from IR), if decodable.
    pub instr: Option<Instr>,
    /// Per-module power breakdown, `(module, mW)`, descending.
    pub breakdown: Vec<(String, f64)>,
}

/// Finds the `k` highest-power cycles of the bound trace (at most one per
/// distinct global cycle) and annotates them.
pub fn cycles_of_interest(
    cpu: &Cpu,
    tree: &ExecutionTree,
    peak: &PeakPowerResult,
    k: usize,
) -> Vec<CycleOfInterest> {
    let mut all: Vec<(f64, SegmentId, usize)> = Vec::new();
    for (si, seg) in tree.segments().iter().enumerate() {
        for ci in 0..seg.len() {
            all.push((peak.bound_mw[si][ci], SegmentId(si as u32), ci));
        }
    }
    all.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite power"));
    let mut seen_cycles = std::collections::HashSet::new();
    let mut out = Vec::new();
    for (p, sid, ci) in all {
        let seg = tree.segment(sid);
        let gc = seg.global_cycle(ci);
        if !seen_cycles.insert(gc) {
            continue;
        }
        let frame = &seg.frames[ci];
        // FSM state from the frame.
        let mut state = None;
        for (i, &net) in cpu.io().states.iter().enumerate() {
            if frame.get(net.index()) == xbound_logic::Lv::One {
                state = Some(State::ALL[i]);
                break;
            }
        }
        // Instruction from IR.
        let mut ir = XWord::ZERO;
        for (b, &net) in cpu.io().ir.iter().enumerate() {
            ir.set_bit(b, frame.get(net.index()));
        }
        let instr = ir
            .to_u16()
            .and_then(|w| decode(&[w, 0, 0], 0).ok())
            .map(|(i, _)| i);
        // Module breakdown from the parity trace that produced this bound
        // (the larger of the two assignments, matching the bound itself).
        let off = usize::from(tree.boundary_prev(sid).is_some());
        let et = &peak.even_traces[sid.index()];
        let ot = &peak.odd_traces[sid.index()];
        let trace = if et.per_cycle_mw().get(ci + off) >= ot.per_cycle_mw().get(ci + off) {
            et
        } else {
            ot
        };
        let breakdown = trace.module_breakdown_at(ci + off);
        out.push(CycleOfInterest {
            segment: sid,
            cycle: ci,
            global_cycle: gc,
            power_mw: p,
            state,
            instr,
            breakdown,
        });
        if out.len() >= k {
            break;
        }
    }
    out
}

/// Formats a COI report like the paper's Fig 14 caption data.
pub fn format_report(cois: &[CycleOfInterest]) -> String {
    let mut s = String::new();
    for coi in cois {
        s.push_str(&format!(
            "COI {} ({:.4} mW) state={} instr={}\n",
            coi.global_cycle,
            coi.power_mw,
            coi.state.map(|st| st.name()).unwrap_or("?"),
            coi.instr
                .map(|i| i.to_string())
                .unwrap_or_else(|| "?".to_string()),
        ));
        for (m, p) in coi.breakdown.iter().take(4) {
            if *p > 0.0 {
                s.push_str(&format!("    {m:<14} {p:.4} mW\n"));
            }
        }
    }
    s
}
