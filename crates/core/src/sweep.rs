//! Operating-point sweeps: explore once, bound every corner.
//!
//! A peak-power/energy bound is per *(application, core, library, clock,
//! voltage)* — but Algorithm 1 (symbolic exploration) never reads the
//! library, clock, or voltage. The execution tree depends only on the
//! program and the netlist; the operating point enters solely at
//! Algorithm 2 ([`peak_power::compute_peak_power_shared`]) and the
//! peak-energy value iteration (where the clock sets the period). A
//! bound-vs-operating-point curve over N corners therefore costs ~1
//! exploration plus N cheap composition passes, not N full analyses.
//!
//! [`run_sweep`] is that amortization, staged by how far each
//! intermediate is corner-invariant:
//!
//! * **once per sweep** — the execution tree, its deterministic
//!   [`ExploreStats`], and the merge-adjusted frames (pure functions of
//!   the program and netlist);
//! * **once per base library** — the max-transitions table and the
//!   even/odd X-**assignment** of the whole tree: a voltage derate
//!   scales rise and fall energies by the same `(V/Vnom)²` factor, so
//!   it can never flip a cell's max-energy transition direction (see
//!   [`CellLibrary::derated`]), and the assignment reads the library
//!   only through that table;
//! * **once per derated library** — the gate-level **energy traces**
//!   ([`peak_power::analyze_tree_energy`]): transition energies never
//!   read the clock, so corners differing only in clock share them.
//!
//! Per corner, all that remains is the exact femtojoule→milliwatt
//! conversion at that corner's clock, the bound composition, and the
//! peak-energy value iteration. Every stage fans out over the shared
//! [`par`] worker pool.
//!
//! **Byte-identity contract.** Every corner's [`BoundsReport`] is
//! byte-identical to an independent single-corner [`crate::CoAnalysis`]
//! run of the same program on a [`crate::UlpSystem`] built from that
//! corner's `(library(), clock_hz)` — at any `(threads, lanes)` setting.
//! The single-corner entry points compute exactly the shared values this
//! module precomputes, so the numeric path is the same code either way
//! (`crates/core/tests/sweep_differential.rs` pins this).

use crate::activity::{ExploreConfig, ExploreStats, SymbolicExplorer};
use crate::peak_power::{self, MaxTransitions, TreeAssignments, TreeEnergyTraces};
use crate::summary::BoundsReport;
use crate::{par, AnalysisError};
use std::time::Instant;
use xbound_cells::CellLibrary;
use xbound_cpu::Cpu;
use xbound_msp430::Program;
use xbound_obs::{metrics, trace};
use xbound_power::PowerAnalyzer;

/// Registry mirrors of the sweep's reuse-tier telemetry, fed once per
/// [`run_sweep`] after the deterministic [`SweepStats`] are final.
struct SweepMetrics {
    sweeps: metrics::Counter,
    corners: metrics::Counter,
    tree_reuse_hits: metrics::Counter,
    tables_built: metrics::Counter,
    trace_sets_built: metrics::Counter,
    trace_reuse_hits: metrics::Counter,
}

fn sweep_metrics() -> &'static SweepMetrics {
    static M: std::sync::OnceLock<SweepMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| SweepMetrics {
        sweeps: metrics::counter("xbound_sweep_runs_total"),
        corners: metrics::counter("xbound_sweep_corners_total"),
        tree_reuse_hits: metrics::counter("xbound_sweep_tree_reuse_hits_total"),
        tables_built: metrics::counter("xbound_sweep_tables_built_total"),
        trace_sets_built: metrics::counter("xbound_sweep_trace_sets_built_total"),
        trace_reuse_hits: metrics::counter("xbound_sweep_trace_reuse_hits_total"),
    })
}

/// One operating point: a base library, a supply voltage, and a clock.
///
/// The voltage is stored against the *base* library and applied lazily
/// ([`Corner::library`]), so a sweep can group corners by base library
/// when sharing max-transitions tables. At the base library's nominal
/// voltage the derate is the identity — the corner keys and caches
/// exactly like the base library.
#[derive(Debug, Clone)]
pub struct Corner {
    base: CellLibrary,
    vdd_v: f64,
    clock_hz: f64,
}

impl Corner {
    /// A corner at an explicit supply voltage (volts, absolute).
    pub fn new(base: CellLibrary, vdd_v: f64, clock_hz: f64) -> Corner {
        Corner {
            base,
            vdd_v,
            clock_hz,
        }
    }

    /// A corner at the base library's nominal voltage.
    pub fn nominal(base: CellLibrary, clock_hz: f64) -> Corner {
        let vdd_v = base.voltage_v();
        Corner::new(base, vdd_v, clock_hz)
    }

    /// The base (nominal-voltage) library.
    pub fn base(&self) -> &CellLibrary {
        &self.base
    }

    /// Supply voltage, volts.
    pub fn vdd_v(&self) -> f64 {
        self.vdd_v
    }

    /// Operating clock, hertz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// The (possibly derated) library this corner analyzes under — what a
    /// direct single-corner [`crate::UlpSystem`] would be built from.
    pub fn library(&self) -> CellLibrary {
        self.base.derated(self.vdd_v)
    }

    /// Canonical corner label, `<library>@<MHz>MHz` — the derated library
    /// name already encodes the voltage (e.g. `ulp65@0.9v@50MHz`), and
    /// the nominal corner reads as the bare base (`ulp65@100MHz`).
    pub fn label(&self) -> String {
        format!("{}@{}MHz", self.library().name(), self.clock_hz / 1e6)
    }
}

/// An ordered list of operating-point corners.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    corners: Vec<Corner>,
}

impl SweepSpec {
    /// A sweep over an explicit corner list (order is preserved in every
    /// result).
    pub fn new(corners: Vec<Corner>) -> SweepSpec {
        SweepSpec { corners }
    }

    /// The cross product `bases × vdd_scales × clocks`, in that nesting
    /// order. `vdd_scales` are relative to each base's nominal voltage
    /// (`1.0` = nominal), so one grid spans libraries with different
    /// nominal supplies.
    pub fn grid(bases: &[CellLibrary], vdd_scales: &[f64], clocks_hz: &[f64]) -> SweepSpec {
        let mut corners = Vec::with_capacity(bases.len() * vdd_scales.len() * clocks_hz.len());
        for base in bases {
            for &s in vdd_scales {
                for &clock_hz in clocks_hz {
                    corners.push(Corner::new(base.clone(), base.voltage_v() * s, clock_hz));
                }
            }
        }
        SweepSpec { corners }
    }

    /// The default 8-corner grid of the drivers and the service: each
    /// embedded library at nominal and 0.9× supply, at its class clock
    /// and half of it. The first corner is the paper's evaluation target
    /// (ulp65, 1.0 V, 100 MHz) — the corner CI byte-diffs against a plain
    /// single-corner run.
    pub fn suite_default() -> SweepSpec {
        let mut corners =
            SweepSpec::grid(&[CellLibrary::ulp65()], &[1.0, 0.9], &[100.0e6, 50.0e6]).corners;
        corners.extend(
            SweepSpec::grid(&[CellLibrary::ulp130()], &[1.0, 0.9], &[8.0e6, 4.0e6]).corners,
        );
        SweepSpec { corners }
    }

    /// The first `n` corners (`0` = all) — the drivers' `--sweep-corners`
    /// truncation knob.
    pub fn truncated(mut self, n: usize) -> SweepSpec {
        if n > 0 {
            self.corners.truncate(n);
        }
        self
    }

    /// The corners, in sweep order.
    pub fn corners(&self) -> &[Corner] {
        &self.corners
    }
}

/// Sweep telemetry: how much work the corner fan-out reused.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepStats {
    /// Corners answered.
    pub corners: u64,
    /// Corners that reused the shared exploration instead of exploring
    /// themselves — every corner after the first, per sweep.
    pub tree_reuse_hits: u64,
    /// Max-transitions tables built — and with each, one shared even/odd
    /// X-assignment of the whole tree (one per distinct base library).
    pub tables_built: u64,
    /// Gate-level energy-trace sets built (one per distinct derated
    /// library; corners differing only in clock share one).
    pub trace_sets_built: u64,
    /// Corners that converted a shared energy-trace set at their own
    /// clock instead of re-running the gate-level analysis.
    pub trace_reuse_hits: u64,
    /// Wall-clock of the one shared exploration, seconds.
    pub explore_seconds: f64,
}

/// One corner's result: the corner, its canonical bounds, and its
/// composition wall-clock.
#[derive(Debug, Clone)]
pub struct CornerResult {
    /// The operating point.
    pub corner: Corner,
    /// Canonical bounds — byte-identical (via
    /// [`BoundsReport::to_json`]) to a direct single-corner run.
    pub report: BoundsReport,
    /// Wall-clock of this corner's Algorithm 2 + peak-energy passes,
    /// seconds (excludes the shared exploration).
    pub seconds: f64,
}

/// The result of one sweep: per-corner bounds in spec order, the shared
/// exploration's statistics, and the reuse telemetry.
#[derive(Debug, Clone)]
pub struct SweepAnalysis {
    /// Per-corner results, in [`SweepSpec`] order.
    pub corners: Vec<CornerResult>,
    /// Statistics of the one shared exploration (corner-invariant).
    pub explore: ExploreStats,
    /// Reuse telemetry.
    pub stats: SweepStats,
}

/// Runs one sweep: explores `program` once on `cpu`, then fans the
/// per-corner power-composition and peak-energy passes of `spec` over
/// `threads` workers (`0` = auto via [`par::resolve_threads`]).
///
/// `config.threads`/`config.lanes` govern the shared exploration exactly
/// as in [`crate::CoAnalysis`]; `threads` governs only the corner
/// fan-out. Callers already running inside a worker pool should pass
/// `threads = 1` ("one layer of parallelism at a time").
///
/// # Errors
///
/// Propagates exploration errors ([`AnalysisError`]); the per-corner
/// passes are infallible.
pub fn run_sweep(
    cpu: &Cpu,
    spec: &SweepSpec,
    program: &Program,
    config: ExploreConfig,
    energy_rounds: u64,
    threads: usize,
) -> Result<SweepAnalysis, AnalysisError> {
    let _span = trace::span_args("sweep", || {
        vec![("corners".to_string(), spec.corners().len().to_string())]
    });
    let t_explore = Instant::now();
    let (tree, explore) = SymbolicExplorer::new(cpu, config).explore(program)?;
    let explore_seconds = t_explore.elapsed().as_secs_f64();
    let nl = cpu.netlist();
    // Corner-invariant precomputation, shared by every corner below.
    let adjusted = peak_power::merge_adjusted_frames(&tree);
    // Group corners by base library (one max-transitions table + one
    // even/odd X-assignment each: derates share their base's table, and
    // the assignment reads the library only through the table) and by
    // derated library (one gate-level energy-trace set each: transition
    // energies never read the clock).
    let mut base_of: Vec<usize> = Vec::with_capacity(spec.corners().len());
    let mut base_names: Vec<&str> = Vec::new();
    let mut lib_of: Vec<usize> = Vec::with_capacity(spec.corners().len());
    let mut libs: Vec<(CellLibrary, usize)> = Vec::new();
    for c in spec.corners() {
        let base = match base_names.iter().position(|n| *n == c.base().name()) {
            Some(i) => i,
            None => {
                base_names.push(c.base().name());
                base_names.len() - 1
            }
        };
        base_of.push(base);
        let lib = c.library();
        let slot = match libs.iter().position(|(l, _)| l.name() == lib.name()) {
            Some(i) => i,
            None => {
                libs.push((lib, base));
                libs.len() - 1
            }
        };
        lib_of.push(slot);
    }
    // Stage 1, per base library: max-transitions table + tree assignment.
    let assignments: Vec<(MaxTransitions, TreeAssignments)> = par::par_map_labeled(
        threads,
        (0..base_names.len()).collect::<Vec<_>>(),
        |_, i| format!("assign:{}", base_names[*i]),
        |_, i| {
            let base =
                spec.corners()[base_of.iter().position(|&b| b == i).expect("base in use")].base();
            let _span = trace::span_args("sweep_assign", || {
                vec![("base".to_string(), base.name().to_string())]
            });
            let tr = MaxTransitions::build(nl, base);
            let asg = peak_power::assign_tree(nl, &tree, &adjusted, true, &tr);
            (tr, asg)
        },
    );
    // Stage 2, per derated library: clock-independent energy traces.
    let trace_sets: Vec<TreeEnergyTraces> = par::par_map_labeled(
        threads,
        (0..libs.len()).collect::<Vec<_>>(),
        |_, i| format!("analyze:{}", libs[*i].0.name()),
        |_, i| {
            let (lib, base) = &libs[i];
            let _span = trace::span_args("sweep_energy_traces", || {
                vec![("library".to_string(), lib.name().to_string())]
            });
            // Any positive clock works: the energy stage never reads it.
            let analyzer = PowerAnalyzer::new(nl, lib, 1.0);
            peak_power::analyze_tree_energy(&analyzer, &assignments[*base].1)
        },
    );
    // Stage 3, per corner: exact fJ→mW conversion, bound composition,
    // peak-energy value iteration.
    let corners = par::par_map_labeled(
        threads,
        (0..spec.corners().len()).collect::<Vec<_>>(),
        |_, i| spec.corners()[*i].label(),
        |_, i| {
            let corner = &spec.corners()[i];
            let _span = trace::span_args("sweep_corner", || {
                vec![("corner".to_string(), corner.label())]
            });
            let t0 = Instant::now();
            let analyzer = PowerAnalyzer::new(nl, &libs[lib_of[i]].0, corner.clock_hz());
            let peak = peak_power::compose_peak_power(&tree, &analyzer, &trace_sets[lib_of[i]]);
            let energy =
                peak_power::compute_peak_energy(&tree, &peak, corner.clock_hz(), energy_rounds);
            CornerResult {
                corner: corner.clone(),
                report: BoundsReport::from_parts(&tree, &explore, &peak, &energy),
                seconds: t0.elapsed().as_secs_f64(),
            }
        },
    );
    let stats = SweepStats {
        corners: corners.len() as u64,
        tree_reuse_hits: corners.len().saturating_sub(1) as u64,
        tables_built: assignments.len() as u64,
        trace_sets_built: trace_sets.len() as u64,
        trace_reuse_hits: (corners.len() - trace_sets.len()) as u64,
        explore_seconds,
    };
    // Mirror the reuse tiers into the global registry (once per sweep).
    let sm = sweep_metrics();
    sm.sweeps.inc();
    sm.corners.add(stats.corners);
    sm.tree_reuse_hits.add(stats.tree_reuse_hits);
    sm.tables_built.add(stats.tables_built);
    sm.trace_sets_built.add(stats.trace_sets_built);
    sm.trace_reuse_hits.add(stats.trace_reuse_hits);
    Ok(SweepAnalysis {
        corners,
        explore,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_crosses_in_order_and_truncates() {
        let spec = SweepSpec::grid(&[CellLibrary::ulp65()], &[1.0, 0.9], &[100.0e6, 50.0e6]);
        let labels: Vec<String> = spec.corners().iter().map(Corner::label).collect();
        assert_eq!(
            labels,
            [
                "ulp65@100MHz",
                "ulp65@50MHz",
                "ulp65@0.9v@100MHz",
                "ulp65@0.9v@50MHz",
            ]
        );
        assert_eq!(spec.clone().truncated(3).corners().len(), 3);
        assert_eq!(spec.clone().truncated(0).corners().len(), 4);
    }

    #[test]
    fn suite_default_grid_leads_with_the_paper_target() {
        let spec = SweepSpec::suite_default();
        assert_eq!(spec.corners().len(), 8);
        let first = &spec.corners()[0];
        assert_eq!(first.library().name(), "ulp65");
        assert_eq!(first.clock_hz(), 100.0e6);
        assert_eq!(first.label(), "ulp65@100MHz");
        // Exactly two distinct base libraries → two shared tables.
        let distinct: std::collections::BTreeSet<&str> =
            spec.corners().iter().map(|c| c.base().name()).collect();
        assert_eq!(distinct.len(), 2);
    }

    #[test]
    fn nominal_corner_library_is_the_base_library() {
        let c = Corner::nominal(CellLibrary::ulp65(), 100.0e6);
        assert_eq!(c.library(), *c.base());
    }
}
