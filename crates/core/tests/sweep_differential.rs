//! The sweep byte-identity contract: every corner of [`run_sweep`] must
//! serialize byte-identically to an independent single-corner
//! [`CoAnalysis`] of the same program on a [`UlpSystem`] built from that
//! corner's operating point — at any `(threads, lanes)` setting. This is
//! what lets sweep corners, direct runs, and the service's
//! content-addressed cache entries compose interchangeably.

use xbound_cells::CellLibrary;
use xbound_core::sweep::{run_sweep, Corner, SweepSpec};
use xbound_core::{BoundsReport, CoAnalysis, ExploreConfig, UlpSystem};
use xbound_msp430::assemble;

const ENERGY_ROUNDS: u64 = 2_000;

fn forked_program() -> xbound_msp430::Program {
    assemble(
        r#"
        main:
            mov &0x0020, r4
            cmp #1, r4
            jeq one
            mov #100, r5
            jmp done
        one:
            mov #0x0130, r6
            mov r4, &0x0130
            mov r4, &0x0138
            nop
            mov &0x013A, r5
        done:
            mov r5, &0x0200
            jmp $
        "#,
    )
    .expect("assembles")
}

/// A cross-library spec exercising every sharing tier: two base
/// libraries (shared tables + assignments), voltage derates (shared
/// base, distinct energy traces), and a same-library/different-clock
/// pair (corners 0 and 4 share one energy-trace set and diverge only in
/// the fJ→mW conversion).
fn spec() -> SweepSpec {
    let ulp65 = CellLibrary::ulp65();
    let ulp130 = CellLibrary::ulp130();
    SweepSpec::new(vec![
        Corner::nominal(ulp65.clone(), 100.0e6),
        Corner::new(ulp65.clone(), ulp65.voltage_v() * 0.9, 50.0e6),
        Corner::nominal(ulp130.clone(), 8.0e6),
        Corner::new(ulp130.clone(), ulp130.voltage_v() * 0.9, 4.0e6),
        Corner::nominal(ulp65.clone(), 50.0e6),
    ])
}

/// The direct single-corner path the sweep must match byte-for-byte.
fn direct(
    corner: &Corner,
    config: ExploreConfig,
    program: &xbound_msp430::Program,
) -> BoundsReport {
    let sys = UlpSystem::new(
        UlpSystem::openmsp430_class().expect("system").cpu().clone(),
        corner.library(),
        corner.clock_hz(),
    );
    let analysis = CoAnalysis::new(&sys)
        .config(config)
        .energy_rounds(ENERGY_ROUNDS)
        .run(program)
        .expect("direct analysis");
    BoundsReport::from_analysis(&analysis)
}

#[test]
fn every_corner_matches_a_direct_single_corner_run_at_any_parallelism() {
    let program = forked_program();
    let spec = spec();
    let sys = UlpSystem::openmsp430_class().expect("system");
    // Direct baselines once (they are themselves schedule-invariant).
    let baselines: Vec<String> = spec
        .corners()
        .iter()
        .map(|c| direct(c, ExploreConfig::suite_default(), &program).to_json())
        .collect();
    for threads in [1usize, 3] {
        for lanes in [1usize, 8] {
            let config = ExploreConfig {
                threads,
                lanes,
                ..ExploreConfig::suite_default()
            };
            let sweep = run_sweep(sys.cpu(), &spec, &program, config, ENERGY_ROUNDS, threads)
                .expect("sweep");
            assert_eq!(sweep.corners.len(), spec.corners().len());
            assert_eq!(sweep.stats.tree_reuse_hits, 4);
            assert_eq!(sweep.stats.tables_built, 2, "one table per base library");
            assert_eq!(
                sweep.stats.trace_sets_built, 4,
                "one energy-trace set per distinct derated library"
            );
            assert_eq!(
                sweep.stats.trace_reuse_hits, 1,
                "the same-library different-clock corner reuses its traces"
            );
            for (cr, baseline) in sweep.corners.iter().zip(&baselines) {
                assert_eq!(
                    &cr.report.to_json(),
                    baseline,
                    "corner {} diverged from its direct run at threads={threads} lanes={lanes}",
                    cr.corner.label(),
                );
            }
        }
    }
}

#[test]
fn derated_corners_bound_below_nominal_at_equal_clock() {
    let program = forked_program();
    let ulp65 = CellLibrary::ulp65();
    let spec = SweepSpec::new(vec![
        Corner::nominal(ulp65.clone(), 100.0e6),
        Corner::new(ulp65.clone(), ulp65.voltage_v() * 0.9, 100.0e6),
    ]);
    let sys = UlpSystem::openmsp430_class().expect("system");
    let sweep = run_sweep(
        sys.cpu(),
        &spec,
        &program,
        ExploreConfig::suite_default(),
        ENERGY_ROUNDS,
        1,
    )
    .expect("sweep");
    let nominal = &sweep.corners[0].report;
    let derated = &sweep.corners[1].report;
    // Quadratic energy scaling: every energy-derived bound shrinks by
    // exactly (0.9)² at the same clock; tree shape is untouched.
    // (summation order differs between the scaled and unscaled
    // libraries, so allow float-roundoff slack).
    let s = 0.9 * 0.9;
    assert!((derated.peak_mw - nominal.peak_mw * s).abs() <= nominal.peak_mw * 1e-9);
    assert!(
        (derated.npe_j_per_cycle - nominal.npe_j_per_cycle * s).abs()
            <= nominal.npe_j_per_cycle * 1e-9
    );
    assert_eq!(derated.segments, nominal.segments);
    assert_eq!(derated.cycles, nominal.cycles);
    assert_eq!(derated.peak_cycle, nominal.peak_cycle);
}
