//! Property test: the work-stealing explorer is invariant under steal
//! interleaving.
//!
//! The scheduler's core contract is that trees, deterministic stats, and
//! bounds are a pure function of the program — not of `(threads, lanes)`
//! and not of *which* victim each idle worker happened to rob first. The
//! test-only `steal_seed` knob shuffles every worker's victim order with
//! a seeded Fisher-Yates permutation, letting proptest drive the
//! scheduler through arbitrary steal interleavings that wall-clock
//! timing alone would rarely produce.

use proptest::prelude::*;
use std::sync::OnceLock;
use xbound_core::{ExecutionTree, ExploreConfig, ExploreStats, SymbolicExplorer, UlpSystem};
use xbound_msp430::{assemble, Program};

/// Fork-heavy kernel: an input-dependent loop (up to 16 forks) plus the
/// final input-dependent exit branch, so every thread count leaves real
/// work on the deques.
const KERNEL: &str = r#"
        main:
            mov &0x0020, r4
            mov #0, r5
        loop:
            bit #0x8000, r4
            jnz done
            add r4, r4
            add #1, r5
            cmp #16, r5
            jnz loop
        done:
            mov r5, &0x0200
            jmp $
        "#;

fn fixture() -> &'static (UlpSystem, Program, ExecutionTree, ExploreStats) {
    static FIXTURE: OnceLock<(UlpSystem, Program, ExecutionTree, ExploreStats)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let sys = UlpSystem::openmsp430_class().expect("system builds");
        let program = assemble(KERNEL).expect("assembles");
        let (tree, stats) = SymbolicExplorer::new(sys.cpu(), config(1, 1, 0))
            .explore(&program)
            .expect("reference explores");
        assert!(stats.forks >= 16, "kernel must fork for this test to bite");
        (sys, program, tree, stats)
    })
}

fn config(threads: usize, lanes: usize, steal_seed: u64) -> ExploreConfig {
    ExploreConfig {
        max_total_cycles: 500_000,
        threads,
        lanes,
        steal_seed,
        ..ExploreConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any steal interleaving, any pool shape: byte-identical tree and
    /// deterministic stats against the 1-thread/1-lane reference.
    #[test]
    fn exploration_is_invariant_under_steal_interleaving(
        steal_seed in any::<u64>(),
        threads in prop_oneof![Just(2usize), Just(3), Just(8)],
        lanes in prop_oneof![Just(1usize), Just(8)],
    ) {
        let (sys, program, ref_tree, ref_stats) = fixture();
        let (tree, stats) = SymbolicExplorer::new(sys.cpu(), config(threads, lanes, steal_seed))
            .explore(program)
            .expect("explores");
        prop_assert_eq!(
            ref_stats.deterministic(),
            stats.deterministic(),
            "stats diverged at {}x{} seed {}",
            threads, lanes, steal_seed
        );
        prop_assert_eq!(
            ref_tree.segments().len(),
            tree.segments().len(),
            "segment count diverged at {}x{} seed {}",
            threads, lanes, steal_seed
        );
        for (i, (a, b)) in ref_tree.segments().iter().zip(tree.segments()).enumerate() {
            prop_assert_eq!(a.start_cycle, b.start_cycle, "seg {} start", i);
            prop_assert_eq!(&a.parent, &b.parent, "seg {} parent", i);
            prop_assert_eq!(&a.end, &b.end, "seg {} end", i);
            prop_assert_eq!(&a.frames, &b.frames, "seg {} frames", i);
        }
    }
}
