//! Incremental re-analysis: subtree-memo byte-identity and the
//! invalidation matrix at the core level.
//!
//! The contract under test: with a [`SubtreeMemo`] attached, a warm
//! re-analysis — of the unchanged program or of a one-instruction edit —
//! produces results byte-identical to a cold, memo-less run, while
//! re-simulating only the perturbed fetch cone. Invalidation must track
//! result-relevant knobs exactly: `threads`/`lanes`/`energy_rounds`
//! changes stay warm, everything in the context hash goes cold.

use std::sync::Arc;
use xbound_core::memo::SubtreeMemo;
use xbound_core::{Analysis, CoAnalysis, ExploreConfig, UlpSystem};
use xbound_msp430::{assemble, Program};

fn system() -> UlpSystem {
    UlpSystem::openmsp430_class().expect("system builds")
}

/// A canonical fingerprint of everything a [`xbound_core::Analysis`]
/// feeds downstream: the full execution tree (frame content hashes), the
/// complete per-segment bound tables, the peak/energy numbers, and the
/// deterministic statistics. Rust's `{:?}` for `f64` prints the shortest
/// round-trip representation, so string equality here is bit equality.
fn fingerprint(a: &Analysis<'_>) -> String {
    let segments: Vec<String> = a
        .tree()
        .segments()
        .iter()
        .map(|s| {
            let mut h = 0xcbf29ce484222325u64;
            for f in &s.frames {
                h = (h ^ f.content_hash()).wrapping_mul(0x100000001b3);
            }
            format!(
                "{}+{}@{:016x}:{:?}",
                s.start_cycle,
                s.frames.len(),
                h,
                s.end
            )
        })
        .collect();
    format!(
        "peak={:?}@{:?} bounds={:?} energy={:?} stats={:?} tree=[{}]",
        a.peak_power().peak_mw,
        a.peak_power().peak_cycle,
        a.peak_power().bound_mw,
        a.peak_energy(),
        a.stats().deterministic(),
        segments.join(";")
    )
}

/// An input-dependent program with two distinct arms: the `one:` arm
/// exercises the multiplier ports, the fall-through arm runs arithmetic.
/// `tail_imm` parameterizes one immediate operand deep inside the
/// fall-through arm — a one-word ROM edit far from the fork.
fn two_arm_program(tail_imm: u16) -> Program {
    let src = format!(
        r#"
        main:
            mov &0x0020, r4
            cmp #1, r4
            jeq one
            mov #12, r5
            add r4, r5
            xor r5, r6
            mov #{tail_imm}, r7
            add r7, r5
            jmp done
        one:
            mov #0x0130, r6
            mov r4, &0x0130
            mov r4, &0x0138
            nop
            mov &0x013A, r5
        done:
            mov r5, &0x0200
            jmp $
        "#
    );
    assemble(&src).expect("assembles")
}

#[test]
fn warm_reanalysis_is_byte_identical_and_fully_stitched() {
    let sys = system();
    let p = two_arm_program(100);
    let baseline = CoAnalysis::new(&sys).run(&p).expect("memo-less run");

    let memo = Arc::new(SubtreeMemo::in_memory());
    let cold = CoAnalysis::new(&sys)
        .memo(Some(memo.clone()))
        .run(&p)
        .expect("cold run");
    let after_cold = memo.stats();
    assert_eq!(after_cold.hits, 0, "nothing to hit on a cold store");
    assert!(after_cold.misses > 0, "cold paths were looked up");
    assert_eq!(
        fingerprint(&baseline),
        fingerprint(&cold),
        "attaching a memo must not change results"
    );

    let warm = CoAnalysis::new(&sys)
        .memo(Some(memo.clone()))
        .run(&p)
        .expect("warm run");
    let after_warm = memo.stats();
    assert!(after_warm.hits > 0, "warm run replays subtrees");
    assert!(
        after_warm.stitched_segments > after_warm.hits,
        "forks seed children"
    );
    assert!(
        after_warm.power_hits > 0,
        "warm run replays per-segment power traces too"
    );
    assert_eq!(
        after_warm.misses, after_cold.misses,
        "an unchanged program re-simulates nothing"
    );
    assert_eq!(fingerprint(&cold), fingerprint(&warm));
}

#[test]
fn one_instruction_edit_stitches_the_unperturbed_cone() {
    let sys = system();
    let original = two_arm_program(100);
    let edited = two_arm_program(101); // one immediate word differs

    let memo = Arc::new(SubtreeMemo::in_memory());
    CoAnalysis::new(&sys)
        .memo(Some(memo.clone()))
        .run(&original)
        .expect("original analyzed");
    let before = memo.stats();

    // Reference: the edited program, cold and memo-less.
    let cold_edited = CoAnalysis::new(&sys).run(&edited).expect("cold edited");

    let warm_edited = CoAnalysis::new(&sys)
        .memo(Some(memo.clone()))
        .run(&edited)
        .expect("warm edited");
    let after = memo.stats();
    assert!(
        after.hits > before.hits,
        "subtrees outside the edited fetch cone replay from the memo"
    );
    assert!(
        after.misses > before.misses,
        "the path that fetches the edited word re-simulates"
    );
    assert_eq!(
        fingerprint(&cold_edited),
        fingerprint(&warm_edited),
        "warm bounds for the edited program must be byte-identical to cold"
    );
}

#[test]
fn invalidation_matrix_tracks_result_relevant_knobs_only() {
    let sys = system();
    let p = two_arm_program(100);
    let memo = Arc::new(SubtreeMemo::in_memory());
    let base = ExploreConfig::default();
    let run = |cfg: ExploreConfig, rounds: u64| {
        CoAnalysis::new(&sys)
            .config(cfg)
            .energy_rounds(rounds)
            .memo(Some(memo.clone()))
            .run(&p)
            .expect("analysis succeeds")
    };

    let cold = run(base, 10_000);
    let seeded = memo.stats();
    assert!(seeded.misses > 0 && seeded.hits == 0);

    // threads / lanes / energy_rounds are not result-relevant: warm.
    let mut warm_cfg = base;
    warm_cfg.threads = 2;
    warm_cfg.lanes = 4;
    let warm = run(warm_cfg, 7);
    let s = memo.stats();
    assert!(s.hits > 0, "parallelism changes must stay warm");
    assert_eq!(
        s.misses, seeded.misses,
        "no re-simulation at (threads=2, lanes=4, energy_rounds=7)"
    );
    // Exploration results are identical; only the energy-round budget
    // (deliberately varied) may move the energy figures.
    assert_eq!(cold.stats().deterministic(), warm.stats().deterministic());

    // Every context knob invalidates: the same state misses and
    // re-simulates under the new context.
    let knobs: Vec<(&str, ExploreConfig)> = vec![
        ("max_segment_cycles", {
            let mut c = base;
            c.max_segment_cycles += 1;
            c
        }),
        ("max_total_cycles", {
            let mut c = base;
            c.max_total_cycles += 1;
            c
        }),
        ("widen_threshold", {
            let mut c = base;
            c.widen_threshold += 1;
            c
        }),
        ("reset_cycles", {
            let mut c = base;
            c.reset_cycles += 1;
            c
        }),
    ];
    for (name, cfg) in knobs {
        let before = memo.stats();
        run(cfg, 10_000);
        let after = memo.stats();
        assert!(
            after.misses > before.misses,
            "changing {name} must invalidate (got {after:?} after {before:?})"
        );
        assert_eq!(
            after.hits, before.hits,
            "changing {name} must not hit stale entries"
        );
    }
}
