//! End-to-end tests of the co-analysis pipeline on small programs.

use xbound_core::{CoAnalysis, ExploreConfig, SegmentEnd, UlpSystem};
use xbound_msp430::assemble;

fn system() -> UlpSystem {
    UlpSystem::openmsp430_class().expect("system builds")
}

#[test]
fn straight_line_program_single_segment() {
    let sys = system();
    let p = assemble("main: mov #5, r4\n add r4, r4\n mov r4, &0x0200\n jmp $\n").unwrap();
    let analysis = CoAnalysis::new(&sys).run(&p).unwrap();
    assert_eq!(analysis.tree().segments().len(), 1);
    assert_eq!(analysis.stats().forks, 0);
    assert!(matches!(
        analysis.tree().segments()[0].end,
        SegmentEnd::Halt
    ));
    let peak = analysis.peak_power();
    assert!(peak.peak_mw > 0.0);
    let energy = analysis.peak_energy();
    assert!(energy.converged);
    assert!(energy.peak_energy_j > 0.0);
    assert!(energy.cycles > 5);
}

#[test]
fn input_dependent_branch_forks_and_bounds_both_paths() {
    let sys = system();
    let p = assemble(
        r#"
        main:
            mov &0x0020, r4
            cmp #1, r4
            jeq one
            mov #100, r5
            jmp done
        one:
            mov #0x0130, r6
            mov r4, &0x0130     ; exercise the multiplier on one path
            mov r4, &0x0138
            nop
            mov &0x013A, r5
        done:
            mov r5, &0x0200
            jmp $
        "#,
    )
    .unwrap();
    let analysis = CoAnalysis::new(&sys).run(&p).unwrap();
    assert!(analysis.stats().forks >= 1, "input-dependent branch forks");
    assert!(analysis.tree().segments().len() >= 3);

    // The bound must dominate concrete runs down BOTH paths.
    for inputs in [[0u16], [1u16], [7u16]] {
        let (frames, trace) = sys.profile_concrete(&p, &inputs, 50_000).unwrap();
        assert!(
            trace.peak_mw() <= analysis.peak_power().peak_mw + 1e-9,
            "input {:?}: concrete peak {} exceeds bound {}",
            inputs,
            trace.peak_mw(),
            analysis.peak_power().peak_mw
        );
        let sup = analysis.check_superset(&frames);
        assert!(
            sup.is_sound(),
            "superset violated for {:?}: {} nets",
            inputs,
            sup.violations.len()
        );
        let dom = analysis
            .check_dominance(&frames, &trace)
            .expect("concrete path must stay inside the tree");
        assert!(
            dom.is_sound(),
            "dominance violated for {:?} at cycles {:?}",
            inputs,
            &dom.violations[..dom.violations.len().min(5)]
        );
        assert!(dom.mean_ratio >= 1.0);
    }
}

#[test]
fn input_dependent_loop_terminates_via_memoization() {
    let sys = system();
    // Loop whose trip count depends on an input (bounded by the data width):
    // count the leading zeros of an input word.
    let p = assemble(
        r#"
        main:
            mov &0x0020, r4
            mov #0, r5
        loop:
            bit #0x8000, r4
            jnz done
            add r4, r4        ; shift left
            add #1, r5
            cmp #16, r5
            jnz loop
        done:
            mov r5, &0x0200
            jmp $
        "#,
    )
    .unwrap();
    let cfg = ExploreConfig {
        max_total_cycles: 500_000,
        ..ExploreConfig::default()
    };
    let analysis = CoAnalysis::new(&sys).config(cfg).run(&p).unwrap();
    assert!(
        analysis.stats().merges > 0,
        "loop must merge via memoization"
    );
    // Concrete runs for several inputs stay inside the bound.
    for input in [0x8000u16, 0x0001, 0x0000, 0x4242] {
        let (frames, trace) = sys.profile_concrete(&p, &[input], 50_000).unwrap();
        assert!(trace.peak_mw() <= analysis.peak_power().peak_mw + 1e-9);
        let sup = analysis.check_superset(&frames);
        assert!(sup.is_sound(), "superset violated for input {input:#06x}");
        let dom = analysis.check_dominance(&frames, &trace).unwrap();
        assert!(
            dom.is_sound(),
            "dominance violated for {input:#06x} at {:?}",
            &dom.violations[..dom.violations.len().min(5)]
        );
    }
}

#[test]
fn parallel_exploration_is_thread_and_lane_invariant() {
    let sys = system();
    // Fork-heavy: an input-dependent loop plus an input-dependent branch,
    // so the speculative pool actually has pending paths to pick up and
    // the batched runner packs multiple branches per gate pass.
    let p = assemble(
        r#"
        main:
            mov &0x0020, r4
            mov #0, r5
        loop:
            bit #0x8000, r4
            jnz done
            add r4, r4
            add #1, r5
            cmp #16, r5
            jnz loop
        done:
            mov r5, &0x0200
            jmp $
        "#,
    )
    .unwrap();
    let explorer = |threads: usize, lanes: usize| {
        let cfg = ExploreConfig {
            max_total_cycles: 500_000,
            threads,
            lanes,
            ..ExploreConfig::default()
        };
        xbound_core::SymbolicExplorer::new(sys.cpu(), cfg)
            .explore(&p)
            .expect("explores")
    };
    // The reference: the historical scalar explorer (one lane, no pool).
    let (t1, s1) = explorer(1, 1);
    assert_eq!(s1.batch.lanes, 1);
    for (threads, lanes) in [(1, 8), (1, 64), (2, 1), (2, 8), (4, 64)] {
        let (tn, sn) = explorer(threads, lanes);
        assert_eq!(
            s1.deterministic(),
            sn.deterministic(),
            "stats differ at {threads} threads x {lanes} lanes"
        );
        assert_eq!(sn.batch.lanes, lanes as u64);
        assert_eq!(
            t1.segments().len(),
            tn.segments().len(),
            "segment count differs at {threads} threads x {lanes} lanes"
        );
        for (a, b) in t1.segments().iter().zip(tn.segments()) {
            assert_eq!(a.start_cycle, b.start_cycle);
            assert_eq!(
                a.frames, b.frames,
                "frames differ at {threads} threads x {lanes} lanes"
            );
            assert_eq!(a.end, b.end);
            assert_eq!(a.parent.map(|(p, _)| p), b.parent.map(|(p, _)| p));
        }
    }
    // The batched runner actually packed branches: with 8 lanes some gate
    // passes must have carried more than one in-flight branch.
    let (_, s8) = explorer(1, 8);
    assert!(
        s8.batch.active_lane_cycles > s8.batch.gate_passes,
        "no pass carried two branches: {:?}",
        s8.batch
    );
    assert!(s8.batch.occupancy() > 0.0 && s8.batch.occupancy() <= 1.0);
    assert!(
        s8.batch.gate_passes < s1.batch.gate_passes,
        "8-lane exploration should need fewer gate passes than scalar \
         ({} vs {})",
        s8.batch.gate_passes,
        s1.batch.gate_passes
    );
}

/// A panic inside a speculatively-executed branch must surface with the
/// committed segment id and scheduling provenance (driver-inline, a
/// worker's own deque, or a steal) — never as a bare payload from a
/// detached thread.
#[test]
fn speculative_panic_carries_segment_and_provenance() {
    let sys = system();
    // One input-dependent branch: both fork children sit at fork depth 1,
    // so the injected panic fires in whichever thread claims the first
    // child, and commit-order determinism fixes the reported segment.
    let p = assemble(
        r#"
        main:
            mov &0x0020, r4
            cmp #1, r4
            jeq one
            mov #100, r5
            jmp done
        one:
            mov r4, &0x0130
        done:
            mov r5, &0x0200
            jmp $
        "#,
    )
    .unwrap();
    let cfg = ExploreConfig {
        threads: 2,
        test_panic_depth: 1,
        ..ExploreConfig::default()
    };
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        xbound_core::SymbolicExplorer::new(sys.cpu(), cfg).explore(&p)
    }))
    .expect_err("injected panic must propagate to the caller");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .expect("panic payload is a string");
    assert!(
        msg.starts_with("explorer driver") || msg.starts_with("explorer worker"),
        "payload names the panicking participant: {msg}"
    );
    assert!(
        msg.contains("claimed inline") || msg.contains("own deque") || msg.contains("stolen from"),
        "payload names the work's provenance: {msg}"
    );
    // Commit order is deterministic, so the segment id in the payload is
    // too, no matter which thread actually ran the batch.
    assert!(
        msg.contains("(segment 2,"),
        "payload pins the committed segment: {msg}"
    );
    assert!(
        msg.contains("test-injected panic at fork depth 1"),
        "payload keeps the original message: {msg}"
    );
}

#[test]
fn tighter_than_rated_power() {
    let sys = system();
    let p = assemble("main: mov #5, r4\n add r4, r4\n jmp $\n").unwrap();
    let analysis = CoAnalysis::new(&sys).run(&p).unwrap();
    let rated = sys.analyzer().rated_peak_mw();
    assert!(
        analysis.peak_power().peak_mw < rated * 0.8,
        "X-based bound ({}) should be well below rated power ({rated})",
        analysis.peak_power().peak_mw
    );
}

#[test]
fn coi_identifies_instruction_and_modules() {
    let sys = system();
    let p = assemble(
        r#"
        main:
            mov &0x0020, r4
            mov r4, &0x0130
            mov r4, &0x0138
            nop
            mov &0x013A, r5
            mov r5, &0x0200
            jmp $
        "#,
    )
    .unwrap();
    let analysis = CoAnalysis::new(&sys).run(&p).unwrap();
    let cois = analysis.cycles_of_interest(3);
    assert_eq!(cois.len(), 3);
    assert!(cois[0].power_mw >= cois[1].power_mw);
    assert!(cois[0].instr.is_some(), "IR should decode at the peak");
    let total: f64 = cois[0].breakdown.iter().map(|(_, p)| p).sum();
    assert!(total > 0.0);
    let report = xbound_core::coi::format_report(&cois);
    assert!(report.contains("COI"));
}

#[test]
fn unresolved_computed_jump_reported() {
    let sys = system();
    // Jump through an input-dependent register value.
    let p = assemble("main: mov &0x0020, r4\n br r4\n jmp $\n").unwrap();
    let err = CoAnalysis::new(&sys).run(&p).unwrap_err();
    assert!(matches!(
        err,
        xbound_core::AnalysisError::UnresolvedPc { .. }
    ));
}

#[test]
fn nonterminating_program_hits_budget() {
    let sys = system();
    let p = assemble("main: add #1, r4\n jmp main\n").unwrap();
    let cfg = ExploreConfig {
        max_segment_cycles: 2_000,
        max_total_cycles: 2_000,
        ..ExploreConfig::default()
    };
    let err = CoAnalysis::new(&sys).config(cfg).run(&p).unwrap_err();
    assert!(matches!(
        err,
        xbound_core::AnalysisError::CycleBudget { .. }
    ));
}

#[test]
fn peak_energy_scales_with_program_length() {
    let sys = system();
    let short = assemble("main: mov #5, r4\n jmp $\n").unwrap();
    let long =
        assemble("main: mov #5, r4\n add r4, r4\n add r4, r4\n add r4, r4\n add r4, r4\n jmp $\n")
            .unwrap();
    let es = CoAnalysis::new(&sys).run(&short).unwrap().peak_energy();
    let el = CoAnalysis::new(&sys).run(&long).unwrap().peak_energy();
    assert!(el.peak_energy_j > es.peak_energy_j);
    assert!(el.cycles > es.cycles);
}
