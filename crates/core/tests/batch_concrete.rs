//! The batched concrete engine against the scalar one: frames, power
//! traces, and validation reports must be bit-identical per input set at
//! any lane width or thread count.

use xbound_core::{CoAnalysis, UlpSystem};
use xbound_msp430::assemble;

fn system() -> UlpSystem {
    UlpSystem::openmsp430_class().expect("system builds")
}

/// An input-dependent program: different inputs take different branches
/// and touch different data, so lanes genuinely diverge.
const SRC: &str = r#"
main:
    mov &0x0020, r4
    mov &0x0022, r5
    cmp r4, r5
    jl  lesser
    add r4, r5
    mov r5, &0x0200
    jmp done
lesser:
    xor r4, r5
    mov r5, &0x0202
done:
    mov &0x0024, r6
    add r6, r6
    mov r6, &0x0204
    jmp $
"#;

#[test]
fn batched_runs_are_bit_identical_to_scalar_runs() {
    let sys = system();
    let program = assemble(SRC).unwrap();
    let input_sets: Vec<Vec<u16>> = vec![
        vec![0, 0, 0],
        vec![1, 2, 3],
        vec![0xFFFF, 0, 0xAAAA],
        vec![7, 7, 7],
        vec![0x8000, 0x7FFF, 1],
    ];
    let batched = sys
        .profile_concrete_batch(&program, &input_sets, 10_000)
        .expect("batch runs");
    assert_eq!(batched.len(), input_sets.len());
    for (inputs, (bframes, btrace)) in input_sets.iter().zip(&batched) {
        let (sframes, strace) = sys
            .profile_concrete(&program, inputs, 10_000)
            .expect("scalar runs");
        assert_eq!(bframes, &sframes, "frames differ for inputs {inputs:?}");
        assert_eq!(btrace, &strace, "trace differs for inputs {inputs:?}");
    }
}

#[test]
fn population_results_independent_of_lane_width_and_threads() {
    let sys = system();
    let program = assemble(SRC).unwrap();
    let input_sets: Vec<Vec<u16>> = (0..7).map(|i| vec![i * 31, 0xFFFF - i, i * i]).collect();
    let reference = sys
        .profile_concrete_population(&program, &input_sets, 10_000, 1, 1)
        .expect("runs");
    for (lanes, threads) in [(2, 1), (3, 2), (32, 4), (64, 1)] {
        let got = sys
            .profile_concrete_population(&program, &input_sets, 10_000, lanes, threads)
            .expect("runs");
        assert_eq!(
            got, reference,
            "population results differ at lanes={lanes} threads={threads}"
        );
    }
}

#[test]
fn validate_population_is_sound_and_width_independent() {
    let sys = system();
    let program = assemble(SRC).unwrap();
    let analysis = CoAnalysis::new(&sys).run(&program).expect("analyzes");
    let input_sets: Vec<Vec<u16>> = (0..5).map(|i| vec![i, 1000 - i, i * 3]).collect();
    let a = analysis
        .validate_population(&program, &input_sets, 10_000, 2, 2)
        .expect("validates");
    let b = analysis
        .validate_population(&program, &input_sets, 10_000, 5, 1)
        .expect("validates");
    assert_eq!(a, b, "reports depend on lane grouping");
    for (i, check) in a.iter().enumerate() {
        assert!(check.is_sound(), "run {i} violates soundness: {check:?}");
    }
}
